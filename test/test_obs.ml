(* Observability layer: metrics registry, span profiler, trace recorder,
   and the engine-level guarantee that an attached sink never changes the
   simulation (bit-identical stats, pinned below). *)

module Obs = Adhoc_obs
module Metrics = Adhoc_obs.Metrics
module Span = Adhoc_obs.Span
module Trace = Adhoc_obs.Trace
module Graph = Adhoc_graph.Graph
module Cost = Adhoc_graph.Cost
module Pipeline = Adhoc.Pipeline
open Adhoc_routing
open Helpers

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counter () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hits" in
  Metrics.incr c;
  Metrics.add c 4;
  (* Registration under an existing name returns the same instrument. *)
  Metrics.incr (Metrics.counter m "hits");
  (match Metrics.snapshot m with
  | [ ("hits", Metrics.Counter 6) ] -> ()
  | _ -> Alcotest.fail "counter snapshot mismatch");
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: negative increment") (fun () -> Metrics.add c (-1))

let test_metrics_gauge () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "height" in
  Metrics.set g 3.;
  Metrics.set g 1.5;
  match Metrics.snapshot m with
  | [ ("height", Metrics.Gauge v) ] -> check_close "last write wins" 1.5 v
  | _ -> Alcotest.fail "gauge snapshot mismatch"

let test_metrics_histogram_boundaries () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" ~buckets:[| 1.; 2.; 5. |] in
  (* le-semantics: bin i counts observations in (b(i-1), b(i)]. *)
  Metrics.observe h 0.5 (* bin 0 *);
  Metrics.observe h 1.0 (* bin 0: equal to a bound lands at that bound *);
  Metrics.observe h 1.5 (* bin 1 *);
  Metrics.observe h 2.0 (* bin 1 *);
  Metrics.observe h 5.0 (* bin 2 *);
  Metrics.observe h 7.0 (* overflow *);
  match Metrics.snapshot m with
  | [ ("lat", Metrics.Histogram { buckets; counts; total; sum }) ] ->
      Alcotest.(check (array (float 0.))) "buckets" [| 1.; 2.; 5. |] buckets;
      Alcotest.(check (array int)) "counts" [| 2; 2; 1; 1 |] counts;
      Alcotest.(check int) "total" 6 total;
      check_close "sum" 17. sum
  | _ -> Alcotest.fail "histogram snapshot mismatch"

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge under counter name"
    (Invalid_argument "Metrics: \"x\" is already a counter") (fun () ->
      ignore (Metrics.gauge m "x"))

let test_metrics_bad_buckets () =
  let m = Metrics.create () in
  Alcotest.check_raises "non-increasing buckets"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () -> ignore (Metrics.histogram m "h" ~buckets:[| 1.; 1. |]))

let test_metrics_snapshot_sorted () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "b");
  ignore (Metrics.counter m "a");
  ignore (Metrics.counter m "c");
  Alcotest.(check (list string)) "sorted by name" [ "a"; "b"; "c" ]
    (List.map fst (Metrics.snapshot m))

(* ------------------------------------------------------------------ *)
(* Span                                                                *)

let test_span_nesting () =
  let s = Span.create () in
  Span.enter s "outer";
  Span.enter s "inner";
  Span.leave s;
  Span.enter s "inner";
  Span.leave s;
  Span.leave s;
  match Span.totals s with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner label" "inner" inner.Span.label;
      Alcotest.(check int) "inner count" 2 inner.Span.count;
      Alcotest.(check string) "outer label" "outer" outer.Span.label;
      Alcotest.(check int) "outer count" 1 outer.Span.count;
      (* Inclusive timing: the outer span contains both inner spans. *)
      Alcotest.(check bool) "outer >= inner" true
        (outer.Span.seconds >= inner.Span.seconds);
      Alcotest.(check bool) "non-negative" true (inner.Span.seconds >= 0.)
  | ts -> Alcotest.failf "expected 2 labels, got %d" (List.length ts)

let test_span_unbalanced_leave () =
  let s = Span.create () in
  Alcotest.check_raises "leave without enter"
    (Invalid_argument "Span.leave: no open span") (fun () -> Span.leave s)

let test_span_time_exception_safe () =
  let s = Span.create () in
  (try Span.time s "work" (fun () -> failwith "boom") with Failure _ -> ());
  (* The span closed despite the exception: totals has it and the stack is
     balanced, so a fresh leave still raises. *)
  (match Span.totals s with
  | [ t ] ->
      Alcotest.(check string) "label" "work" t.Span.label;
      Alcotest.(check int) "count" 1 t.Span.count
  | _ -> Alcotest.fail "span not accumulated");
  Alcotest.check_raises "stack balanced"
    (Invalid_argument "Span.leave: no open span") (fun () -> Span.leave s)

let test_span_reset () =
  let s = Span.create () in
  Span.time s "a" (fun () -> ());
  Span.reset s;
  Alcotest.(check int) "empty after reset" 0 (List.length (Span.totals s))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let sample step =
  {
    Trace.step;
    buffered = step;
    max_height = 1;
    mean_height = 0.5;
    injected = 0;
    delivered = 0;
    dropped = 0;
    sends = 0;
    failed_sends = 0;
    active_edges = 0;
  }

let test_trace_stride () =
  let tr = Trace.create ~stride:3 () in
  let recorded = ref [] in
  for step = 0 to 10 do
    if Trace.wants tr ~step then begin
      Trace.record tr (sample step);
      recorded := step :: !recorded
    end
  done;
  Alcotest.(check (list int)) "steps on stride" [ 0; 3; 6; 9 ] (List.rev !recorded);
  Alcotest.(check int) "length" 4 (Trace.length tr);
  Alcotest.(check (list int)) "samples in order" [ 0; 3; 6; 9 ]
    (Array.to_list (Array.map (fun s -> s.Trace.step) (Trace.samples tr)))

let test_trace_growth () =
  let tr = Trace.create ~initial_capacity:2 () in
  for step = 0 to 99 do
    Trace.record tr (sample step)
  done;
  Alcotest.(check int) "grows past capacity" 100 (Trace.length tr);
  let ss = Trace.samples tr in
  Alcotest.(check int) "first" 0 ss.(0).Trace.step;
  Alcotest.(check int) "last" 99 ss.(99).Trace.step

let test_trace_jsonl_lines () =
  let tr = Trace.create () in
  for step = 0 to 4 do
    Trace.record tr (sample step)
  done;
  let file = Filename.temp_file "trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save_jsonl tr file;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per sample" 5 (List.length lines);
      List.iteri
        (fun i line ->
          let want = Printf.sprintf "{\"step\":%d," i in
          Alcotest.(check bool)
            (Printf.sprintf "line %d starts with its step" i)
            true
            (String.length line > String.length want
            && String.sub line 0 (String.length want) = want
            && line.[String.length line - 1] = '}'))
        lines)

let test_trace_csv_shape () =
  let tr = Trace.create () in
  Trace.record tr (sample 0);
  Trace.record tr (sample 1);
  let file = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save_csv tr file;
      let ic = open_in file in
      let header = input_line ic in
      let row0 = input_line ic in
      let _row1 = input_line ic in
      let eof = try ignore (input_line ic); false with End_of_file -> true in
      close_in ic;
      Alcotest.(check bool) "eof after rows" true eof;
      let cols s = List.length (String.split_on_char ',' s) in
      Alcotest.(check int) "header arity matches rows" (cols header) (cols row0);
      Alcotest.(check string) "step column first" "step"
        (List.hd (String.split_on_char ',' header)))

(* ------------------------------------------------------------------ *)
(* Engine golden: a sink never changes the simulation                  *)

(* Fixed instance + workloads; the stats below were captured from the
   pre-observability engine and pin both "obs disabled" and "obs enabled"
   runs bit-identically. *)
let fixture =
  lazy
    (let rng = Prng.create 42 in
     let points = Adhoc_pointset.Generators.uniform rng 80 in
     let range = 1.5 *. Adhoc_topo.Udg.critical_range points in
     let b = Pipeline.prepare ~theta:(Float.pi /. 6.) ~range points in
     let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:100 in
     let config =
       { Workload.horizon = 600; attempts = 400; slack = 12; interference_free = false }
     in
     let w =
       Workload.flows config ~rng:(Prng.create 5) ~graph:b.Pipeline.overlay
         ~cost:Cost.length ~num_flows:3
     in
     let wq =
       Workload.flows ~conflict:b.Pipeline.conflict
         { config with Workload.interference_free = true }
         ~rng:(Prng.create 6) ~graph:b.Pipeline.overlay ~cost:Cost.length ~num_flows:3
     in
     (b, params, w, wq))

let golden_pad =
  {
    Engine.steps = 800;
    injected = 252;
    dropped = 0;
    delivered = 145;
    sends = 710;
    failed_sends = 0;
    total_cost = 106.59489637196208;
    peak_height = 8;
    remaining = 107;
  }

let golden_plain =
  {
    Engine.steps = 800;
    injected = 399;
    dropped = 0;
    delivered = 364;
    sends = 1093;
    failed_sends = 0;
    total_cost = 156.08249602281123;
    peak_height = 13;
    remaining = 35;
  }

let golden_csma =
  {
    Engine.steps = 800;
    injected = 399;
    dropped = 0;
    delivered = 217;
    sends = 983;
    failed_sends = 0;
    total_cost = 142.52346657104204;
    peak_height = 10;
    remaining = 182;
  }

let check_stats name (expected : Engine.stats) (got : Engine.stats) =
  Alcotest.(check int) (name ^ " steps") expected.Engine.steps got.Engine.steps;
  Alcotest.(check int) (name ^ " injected") expected.Engine.injected got.Engine.injected;
  Alcotest.(check int) (name ^ " dropped") expected.Engine.dropped got.Engine.dropped;
  Alcotest.(check int) (name ^ " delivered") expected.Engine.delivered got.Engine.delivered;
  Alcotest.(check int) (name ^ " sends") expected.Engine.sends got.Engine.sends;
  Alcotest.(check int) (name ^ " failed") expected.Engine.failed_sends got.Engine.failed_sends;
  (* Bit-identical, not approximately equal. *)
  Alcotest.(check bool)
    (name ^ " total_cost bit-identical")
    true
    (Int64.equal
       (Int64.bits_of_float expected.Engine.total_cost)
       (Int64.bits_of_float got.Engine.total_cost));
  Alcotest.(check int) (name ^ " peak") expected.Engine.peak_height got.Engine.peak_height;
  Alcotest.(check int) (name ^ " remaining") expected.Engine.remaining got.Engine.remaining

let run_pad ?obs () =
  let b, params, _, wq = Lazy.force fixture in
  Engine.run_mac_given ~cooldown:200 ?obs ~pad:b.Pipeline.conflict
    ~graph:b.Pipeline.overlay ~cost:Cost.length ~params wq

let run_plain ?obs () =
  let b, params, w, _ = Lazy.force fixture in
  Engine.run_mac_given ~cooldown:200 ?obs ~graph:b.Pipeline.overlay ~cost:Cost.length
    ~params w

let run_csma ?obs () =
  let b, params, w, _ = Lazy.force fixture in
  let mac = Adhoc_mac.Mac.csma ~rng:(Prng.create 7) b.Pipeline.conflict in
  Engine.run_with_mac ~cooldown:200 ?obs ~collisions:b.Pipeline.conflict
    ~graph:b.Pipeline.overlay ~cost:Cost.length ~params ~mac w

let test_golden_disabled () =
  check_stats "pad" golden_pad (run_pad ());
  check_stats "plain" golden_plain (run_plain ());
  check_stats "csma" golden_csma (run_csma ())

let test_golden_enabled () =
  (* A full sink — metrics, spans and a stride-1 trace — must not perturb
     the run: same golden numbers, one trace sample per step. *)
  let obs = Obs.create ~trace:(Trace.create ()) () in
  check_stats "pad+obs" golden_pad (run_pad ~obs ());
  Alcotest.(check int) "one sample per step" 800
    (Trace.length (Option.get obs.Obs.trace));
  let labels = List.map (fun t -> t.Span.label) (Span.totals obs.Obs.spans) in
  Alcotest.(check bool) "decide span" true (List.mem "engine/decide" labels);
  Alcotest.(check bool) "apply span" true (List.mem "engine/apply" labels);
  (match List.assoc_opt "engine.delivered" (Metrics.snapshot obs.Obs.metrics) with
  | Some (Metrics.Counter d) -> Alcotest.(check int) "delivered counter" 145 d
  | _ -> Alcotest.fail "engine.delivered counter missing")

let test_golden_enabled_csma () =
  let obs = Obs.create ~trace:(Trace.create ~stride:10 ()) () in
  check_stats "csma+obs" golden_csma (run_csma ~obs ());
  Alcotest.(check int) "stride-10 sample count" 80
    (Trace.length (Option.get obs.Obs.trace));
  let labels = List.map (fun t -> t.Span.label) (Span.totals obs.Obs.spans) in
  Alcotest.(check bool) "mac span" true
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "mac/") labels)

let test_trace_deltas_sum () =
  (* Per-sample deltas must partition the run totals: summing the stride-1
     trace reproduces the aggregate stats. *)
  let obs = Obs.create ~trace:(Trace.create ()) () in
  let stats = run_plain ~obs () in
  let tr = Option.get obs.Obs.trace in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 (Trace.samples tr) in
  Alcotest.(check int) "injected" stats.Engine.injected (sum (fun s -> s.Trace.injected));
  Alcotest.(check int) "delivered" stats.Engine.delivered
    (sum (fun s -> s.Trace.delivered));
  Alcotest.(check int) "sends" stats.Engine.sends (sum (fun s -> s.Trace.sends));
  Alcotest.(check int) "dropped" stats.Engine.dropped (sum (fun s -> s.Trace.dropped));
  let peak = Array.fold_left (fun a s -> max a s.Trace.max_height) 0 (Trace.samples tr) in
  Alcotest.(check int) "peak via trace" stats.Engine.peak_height peak

let test_tracked_engine_obs_identical () =
  let b, params, _, wq = Lazy.force fixture in
  let run ?obs () =
    Tracked_engine.run_mac_given ~cooldown:200 ?obs ~pad:b.Pipeline.conflict
      ~graph:b.Pipeline.overlay ~cost:Cost.length ~params wq
  in
  let plain = run () in
  let obs = Obs.create () in
  let with_obs = run ~obs () in
  check_stats "tracked base" plain.Tracked_engine.base with_obs.Tracked_engine.base;
  check_stats "tracked vs engine" golden_pad plain.Tracked_engine.base

(* ------------------------------------------------------------------ *)
(* Span self time                                                      *)

let test_span_self_time () =
  let s = Span.create () in
  Span.enter s "outer";
  Span.enter s "inner";
  (* Busy-wait so the inner span has measurable width. *)
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < 1e-4 do
    ()
  done;
  Span.leave s;
  Span.leave s;
  match Span.totals s with
  | [ inner; outer ] ->
      (* A leaf's exclusive time is its inclusive time. *)
      Alcotest.(check bool) "leaf self = seconds" true
        (inner.Span.self_seconds = inner.Span.seconds);
      Alcotest.(check bool) "parent self excludes child" true
        (outer.Span.self_seconds <= outer.Span.seconds -. inner.Span.seconds +. 1e-12);
      Alcotest.(check bool) "self non-negative" true (outer.Span.self_seconds >= 0.)
  | ts -> Alcotest.failf "expected 2 labels, got %d" (List.length ts)

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)

module Event = Obs.Event
module Invariants = Obs.Invariants

let sample_events =
  [
    Event.Inject { step = 0; src = 1; dst = 2; admitted = true };
    Event.Inject { step = 0; src = 3; dst = 3; admitted = false };
    Event.Send
      {
        step = 1;
        edge = 7;
        src = 1;
        dst = 4;
        dest = 2;
        cost = 0.1 +. 0.2 (* not representable: exercises exact round-trip *);
        outcome = Event.Moved;
      };
    Event.Collide { step = 1; edge = 9; src = 4; dst = 5; dest = 2; cost = 1. /. 3. };
    Event.Deliver { step = 2; dst = 2; self = false };
    Event.Epoch_change { step = 3; epoch = 1 };
    Event.Height_advert { step = 3; node = 6 };
    Event.Send
      {
        step = 4;
        edge = 0;
        src = 4;
        dst = 2;
        dest = 2;
        cost = 106.59489637196208;
        outcome = Event.Delivered;
      };
  ]

let test_event_roundtrip () =
  let log = Event.create () in
  List.iter (Event.record log) sample_events;
  Alcotest.(check int) "length" (List.length sample_events) (Event.length log);
  List.iteri
    (fun i ev ->
      if Event.get log i <> ev then Alcotest.failf "event %d decoded differently" i)
    sample_events;
  Alcotest.check_raises "out of bounds" (Invalid_argument "Event.get: index out of bounds")
    (fun () -> ignore (Event.get log 8))

let test_event_growth () =
  let log = Event.create ~initial_capacity:2 () in
  for i = 0 to 999 do
    Event.send log ~step:i ~edge:i ~src:0 ~dst:1 ~dest:2 ~cost:(float_of_int i /. 7.)
      ~outcome:(if i mod 2 = 0 then Event.Moved else Event.Delivered)
  done;
  Alcotest.(check int) "grows past capacity" 1000 (Event.length log);
  match Event.get log 999 with
  | Event.Send { step = 999; edge = 999; cost; outcome = Event.Delivered; _ } ->
      Alcotest.(check bool) "cost survives growth" true
        (Int64.equal (Int64.bits_of_float cost) (Int64.bits_of_float (999. /. 7.)))
  | _ -> Alcotest.fail "last event mangled"

let test_event_observer () =
  let log = Event.create () in
  let seen = ref [] in
  Event.set_observer log (fun i e -> seen := (i, e) :: !seen);
  List.iter (Event.record log) sample_events;
  Alcotest.(check int) "observer saw every record" (List.length sample_events)
    (List.length !seen);
  List.iteri
    (fun i ev ->
      let j, got = List.nth (List.rev !seen) i in
      Alcotest.(check int) "index" i j;
      if got <> ev then Alcotest.failf "observer got a different event at %d" i)
    sample_events;
  Event.clear_observer log;
  Event.deliver log ~step:9 ~dst:0 ~self:true;
  Alcotest.(check int) "cleared observer fires no more" (List.length sample_events)
    (List.length !seen)

let with_temp_file suffix f =
  let file = Filename.temp_file "events" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let test_event_jsonl_roundtrip () =
  let log = Event.create () in
  List.iter (Event.record log) sample_events;
  with_temp_file ".jsonl" (fun file ->
      Event.save_jsonl log file;
      let ic = open_in file in
      let header = input_line ic in
      close_in ic;
      Alcotest.(check string) "schema header" "{\"schema\":\"adhoc-events/1\"}" header;
      match Event.load_jsonl file with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok events ->
          Alcotest.(check int) "count" (List.length sample_events) (Array.length events);
          List.iteri
            (fun i ev ->
              (* Costs must survive the text round-trip bit-for-bit; the
                 variant comparison covers them since floats are compared
                 structurally and none is nan. *)
              if events.(i) <> ev then Alcotest.failf "event %d changed in flight" i)
            sample_events)

let test_event_jsonl_rejects () =
  let write file lines =
    let oc = open_out file in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  with_temp_file ".jsonl" (fun file ->
      write file [ "{\"schema\":\"adhoc-events/2\"}" ];
      (match Event.load_jsonl file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "wrong schema accepted");
      write file
        [ "{\"schema\":\"adhoc-events/1\"}"; "{\"type\":\"send\",\"step\":0}" ];
      (match Event.load_jsonl file with
      | Error msg ->
          Alcotest.(check bool) "error names the line" true (contains msg ":2")
      | Ok _ -> Alcotest.fail "truncated send accepted");
      write file [ "{\"schema\":\"adhoc-events/1\"}"; "not json" ];
      match Event.load_jsonl file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage line accepted")

(* ------------------------------------------------------------------ *)
(* Invariants: seeded corrupt logs must be caught                      *)

let clean_events =
  [
    Event.Inject { step = 0; src = 0; dst = 2; admitted = true };
    Event.Send
      { step = 1; edge = 0; src = 0; dst = 1; dest = 2; cost = 1.; outcome = Event.Moved };
    Event.Send
      {
        step = 2;
        edge = 1;
        src = 1;
        dst = 2;
        dest = 2;
        cost = 0.5;
        outcome = Event.Delivered;
      };
    Event.Deliver { step = 2; dst = 2; self = false };
  ]

let violations_of events = Invariants.run (Array.of_list events)

let expect_violation name events fragment =
  match violations_of events with
  | [] -> Alcotest.failf "%s: corrupt log passed" name
  | v :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: reason mentions %S (got %S)" name fragment
           v.Invariants.reason)
        true
        (contains v.Invariants.reason fragment)

let test_invariants_clean () =
  Alcotest.(check int) "clean log has no violations" 0
    (List.length (violations_of clean_events))

let test_invariants_monotone () =
  expect_violation "step regression"
    (clean_events
    @ [ Event.Inject { step = 0; src = 0; dst = 1; admitted = true } ])
    "non-monotone"

let test_invariants_empty_buffer () =
  expect_violation "send with nothing buffered"
    [
      Event.Send
        { step = 0; edge = 0; src = 0; dst = 1; dest = 2; cost = 1.; outcome = Event.Moved };
    ]
    "buffer is empty"

let test_invariants_delivered_wrong_node () =
  expect_violation "delivered away from the destination"
    [
      Event.Inject { step = 0; src = 0; dst = 2; admitted = true };
      Event.Send
        {
          step = 1;
          edge = 0;
          src = 0;
          dst = 1;
          dest = 2;
          cost = 1.;
          outcome = Event.Delivered;
        };
    ]
    "not the destination"

let test_invariants_moved_at_destination () =
  expect_violation "moved into the destination without delivering"
    [
      Event.Inject { step = 0; src = 0; dst = 1; admitted = true };
      Event.Send
        { step = 1; edge = 0; src = 0; dst = 1; dest = 1; cost = 1.; outcome = Event.Moved };
    ]
    "should deliver"

let test_invariants_spurious_deliver () =
  expect_violation "Deliver from nowhere"
    [ Event.Deliver { step = 0; dst = 1; self = false } ]
    "no delivering send"

let test_invariants_missing_deliver () =
  (* Two delivering events with no Deliver between them: the second opens
     while the first is still owed. *)
  expect_violation "missing Deliver"
    [
      Event.Inject { step = 0; src = 1; dst = 1; admitted = true };
      Event.Inject { step = 0; src = 2; dst = 2; admitted = true };
    ]
    "still lacks"

let test_invariants_endpoints () =
  let c = Invariants.create ~endpoints:(fun _ -> (5, 6)) () in
  List.iteri (fun i e -> Invariants.check c i e) clean_events;
  Alcotest.(check bool) "mismatched endpoints flagged" false (Invariants.ok c)

let test_invariants_edge_active () =
  let c = Invariants.create ~is_active:(fun ~step:_ ~edge -> edge <> 1) () in
  List.iteri (fun i e -> Invariants.check c i e) clean_events;
  (match Invariants.violations c with
  | [ v ] ->
      Alcotest.(check bool) "names the inactive edge" true
        (contains v.Invariants.reason "edge 1")
  | vs -> Alcotest.failf "expected exactly 1 violation, got %d" (List.length vs));
  let ok = Invariants.create ~is_active:(fun ~step:_ ~edge:_ -> true) () in
  List.iteri (fun i e -> Invariants.check ok i e) clean_events;
  Alcotest.(check bool) "always-active passes" true (Invariants.ok ok)

let test_invariants_final_check () =
  let feed () =
    let c = Invariants.create () in
    List.iteri (fun i e -> Invariants.check c i e) clean_events;
    c
  in
  let c = feed () in
  Invariants.final_check c ~injected:1 ~dropped:0 ~delivered:1 ~sends:2 ~failed_sends:0
    ~total_cost:1.5 ~remaining:0;
  Alcotest.(check bool) "faithful stats reconcile" true (Invariants.ok c);
  let c = feed () in
  Invariants.final_check c ~injected:1 ~dropped:0 ~delivered:2 ~sends:2 ~failed_sends:0
    ~total_cost:1.5 ~remaining:0;
  Alcotest.(check bool) "delivered mismatch caught" false (Invariants.ok c);
  let c = feed () in
  Invariants.final_check c ~injected:1 ~dropped:0 ~delivered:1 ~sends:2 ~failed_sends:0
    ~total_cost:(1.5 +. 1e-12) ~remaining:0;
  Alcotest.(check bool) "energy compared bit-for-bit" false (Invariants.ok c)

let test_invariants_cap () =
  let log =
    List.init 200 (fun i -> Event.Deliver { step = i; dst = 0; self = false })
  in
  let c = Invariants.create () in
  List.iteri (fun i e -> Invariants.check c i e) log;
  Alcotest.(check int) "every violation counted" 200 (Invariants.violation_count c);
  Alcotest.(check int) "kept list capped" Invariants.max_kept
    (List.length (Invariants.violations c))

(* ------------------------------------------------------------------ *)
(* Engine event emission: golden runs with an event log attached       *)

let count p events = Array.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 events

let is_send = function Event.Send _ -> true | _ -> false
let is_collide = function Event.Collide _ -> true | _ -> false
let is_deliver = function Event.Deliver _ -> true | _ -> false

let checked_run name golden run =
  let b, _, _, _ = Lazy.force fixture in
  let log = Event.create () in
  let obs = Obs.create ~events:log () in
  let checker =
    Invariants.create ~endpoints:(Graph.endpoints b.Pipeline.overlay) ()
  in
  Invariants.attach checker log;
  let stats = run ?obs:(Some obs) () in
  check_stats (name ^ "+events") golden stats;
  Invariants.final_check checker ~injected:stats.Engine.injected
    ~dropped:stats.Engine.dropped ~delivered:stats.Engine.delivered
    ~sends:stats.Engine.sends ~failed_sends:stats.Engine.failed_sends
    ~total_cost:stats.Engine.total_cost ~remaining:stats.Engine.remaining;
  if not (Invariants.ok checker) then
    Alcotest.failf "%s: %s" name (Invariants.report checker);
  let events = Event.to_array log in
  Alcotest.(check int)
    (name ^ " one Deliver per delivery")
    stats.Engine.delivered (count is_deliver events);
  Alcotest.(check int)
    (name ^ " one Send per successful attempt")
    (stats.Engine.sends - stats.Engine.failed_sends)
    (count is_send events);
  Alcotest.(check int)
    (name ^ " one Collide per failed attempt")
    stats.Engine.failed_sends (count is_collide events);
  events

let test_events_golden_pad () = ignore (checked_run "pad" golden_pad run_pad)
let test_events_golden_plain () = ignore (checked_run "plain" golden_plain run_plain)
let test_events_golden_csma () = ignore (checked_run "csma" golden_csma run_csma)

let test_events_collisions_checked () =
  (* Mac.all with a collision structure forces interfering grants to
     collide, exercising the Collide emission and its invariants. *)
  let b, params, w, _ = Lazy.force fixture in
  let log = Event.create () in
  let obs = Obs.create ~events:log () in
  let checker = Invariants.create ~endpoints:(Graph.endpoints b.Pipeline.overlay) () in
  Invariants.attach checker log;
  let stats =
    Engine.run_with_mac ~cooldown:200 ~obs ~collisions:b.Pipeline.conflict
      ~graph:b.Pipeline.overlay ~cost:Cost.length ~params ~mac:Adhoc_mac.Mac.all w
  in
  Alcotest.(check bool) "collisions actually happened" true (stats.Engine.failed_sends > 0);
  Invariants.final_check checker ~injected:stats.Engine.injected
    ~dropped:stats.Engine.dropped ~delivered:stats.Engine.delivered
    ~sends:stats.Engine.sends ~failed_sends:stats.Engine.failed_sends
    ~total_cost:stats.Engine.total_cost ~remaining:stats.Engine.remaining;
  if not (Invariants.ok checker) then Alcotest.fail (Invariants.report checker);
  Alcotest.(check int) "collide events" stats.Engine.failed_sends
    (count is_collide (Event.to_array log))

(* ------------------------------------------------------------------ *)
(* Journey: offline replay reproduces the tracked engine exactly       *)

let bits = Int64.bits_of_float

let check_journey_matches name (t : Tracked_engine.stats) (j : Journey.t) =
  let same field a b =
    if not (Int64.equal (bits a) (bits b)) then
      Alcotest.failf "%s %s: tracked %.17g, journey %.17g" name field a b
  in
  same "latency mean" t.Tracked_engine.latency_mean j.Journey.latency_mean;
  same "latency median" t.Tracked_engine.latency_median j.Journey.latency_median;
  same "latency p95" t.Tracked_engine.latency_p95 j.Journey.latency_p95;
  same "hops mean" t.Tracked_engine.hops_mean j.Journey.hops_mean;
  same "energy per delivered" t.Tracked_engine.energy_per_delivered
    j.Journey.energy_per_delivered;
  same "total energy" t.Tracked_engine.base.Engine.total_cost j.Journey.totals.Journey.energy;
  Alcotest.(check int) (name ^ " delivered") t.Tracked_engine.base.Engine.delivered
    j.Journey.totals.Journey.delivered;
  Alcotest.(check int) (name ^ " injected") t.Tracked_engine.base.Engine.injected
    j.Journey.totals.Journey.injected;
  Alcotest.(check int) (name ^ " dropped") t.Tracked_engine.base.Engine.dropped
    j.Journey.totals.Journey.dropped;
  Alcotest.(check int) (name ^ " anomalies") 0 j.Journey.anomalies;
  Alcotest.(check int)
    (name ^ " packet count")
    (List.length t.Tracked_engine.packets)
    (List.length j.Journey.packets)

let tracked_with_events () =
  let b, params, _, wq = Lazy.force fixture in
  let log = Event.create () in
  let obs = Obs.create ~events:log () in
  let t =
    Tracked_engine.run_mac_given ~cooldown:200 ~obs ~pad:b.Pipeline.conflict
      ~graph:b.Pipeline.overlay ~cost:Cost.length ~params wq
  in
  (t, log)

let test_journey_matches_tracked () =
  let t, log = tracked_with_events () in
  check_journey_matches "golden" t (Journey.analyze (Event.to_array log))

let test_journey_survives_jsonl () =
  (* The analytics must be reproducible from the file, not just the
     in-memory log — %.17g costs make the round trip exact. *)
  let t, log = tracked_with_events () in
  with_temp_file ".jsonl" (fun file ->
      Event.save_jsonl log file;
      match Event.load_jsonl file with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok events -> check_journey_matches "jsonl" t (Journey.analyze events))

let test_journey_matches_tracked_random =
  qtest "journey replay = tracked engine on random workloads" ~count:15 seed_gen
    (fun seed ->
      let points = points_of_seed ~min_n:6 ~max_n:25 seed in
      let range = 2. *. Adhoc_topo.Udg.critical_range points in
      let g =
        Adhoc_topo.Theta_alg.overlay
          (Adhoc_topo.Theta_alg.build ~theta:(Float.pi /. 6.) ~range points)
      in
      let config =
        { Workload.horizon = 300; attempts = 200; slack = 10; interference_free = false }
      in
      let w =
        Workload.flows config ~rng:(Prng.create seed) ~graph:g ~cost:Cost.length
          ~num_flows:2
      in
      let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
      let log = Event.create () in
      let obs = Obs.create ~events:log () in
      let t =
        Tracked_engine.run_mac_given ~cooldown:150 ~obs ~graph:g ~cost:Cost.length ~params w
      in
      let j = Journey.analyze (Event.to_array log) in
      Int64.equal (bits t.Tracked_engine.latency_mean) (bits j.Journey.latency_mean)
      && Int64.equal (bits t.Tracked_engine.latency_median) (bits j.Journey.latency_median)
      && Int64.equal (bits t.Tracked_engine.latency_p95) (bits j.Journey.latency_p95)
      && Int64.equal (bits t.Tracked_engine.hops_mean) (bits j.Journey.hops_mean)
      && Int64.equal
           (bits t.Tracked_engine.energy_per_delivered)
           (bits j.Journey.energy_per_delivered)
      && Int64.equal (bits t.Tracked_engine.base.Engine.total_cost)
           (bits j.Journey.totals.Journey.energy)
      && j.Journey.anomalies = 0)

let test_journey_flags_corrupt_log () =
  let j =
    Journey.analyze
      [|
        Event.Send
          {
            step = 0;
            edge = 0;
            src = 0;
            dst = 1;
            dest = 2;
            cost = 1.;
            outcome = Event.Moved;
          };
      |]
  in
  Alcotest.(check bool) "uninjected send is an anomaly" true (j.Journey.anomalies > 0)

let test_journey_edge_table () =
  let t, log = tracked_with_events () in
  let j = Journey.analyze (Event.to_array log) in
  let edge_sends =
    Array.fold_left (fun a (e : Journey.edge_use) -> a + e.Journey.sends) 0 j.Journey.edges
  in
  Alcotest.(check int) "per-edge sends partition the total"
    t.Tracked_engine.base.Engine.sends edge_sends;
  Array.iter
    (fun (e : Journey.edge_use) ->
      let u, v = Graph.endpoints (let b, _, _, _ = Lazy.force fixture in b.Pipeline.overlay) e.Journey.edge in
      if not ((u, v) = (e.Journey.u, e.Journey.v) || (v, u) = (e.Journey.u, e.Journey.v))
      then Alcotest.failf "edge %d endpoints wrong" e.Journey.edge;
      if Journey.mean_wait e < 0. then Alcotest.fail "negative head-of-line wait")
    j.Journey.edges;
  match j.Journey.timeline with
  | [||] -> Alcotest.fail "no timeline"
  | tl ->
      let _, final_delivered, _ = tl.(Array.length tl - 1) in
      Alcotest.(check int) "timeline converges to the delivery total"
        t.Tracked_engine.base.Engine.delivered final_delivered

(* ------------------------------------------------------------------ *)
(* Engine variants: obs parity                                         *)

let small_instance seed =
  let points = points_of_seed ~min_n:8 ~max_n:20 seed in
  let range = 2. *. Adhoc_topo.Udg.critical_range points in
  let g =
    Adhoc_topo.Theta_alg.overlay
      (Adhoc_topo.Theta_alg.build ~theta:(Float.pi /. 6.) ~range points)
  in
  let c =
    Adhoc_interference.Conflict.build (Adhoc_interference.Model.make ~delta:0.5) ~points g
  in
  (g, c)

let test_dynamic_obs_parity () =
  let g, c = small_instance 11 in
  let n = Graph.n g in
  let rng = Prng.create 11 in
  let flow = (Prng.int rng n, Prng.int rng n) in
  let injections t = if t < 200 && t mod 3 = 0 then [ flow ] else [] in
  let params = Balancing.params ~threshold:1. ~gamma:0.1 ~capacity:50 in
  let epochs =
    [
      { Dynamic_engine.graph = g; conflict = c; steps = 150 };
      { Dynamic_engine.graph = g; conflict = c; steps = 250 };
    ]
  in
  let run ?obs () = Dynamic_engine.run ?obs ~epochs ~injections ~cost:Cost.length ~params () in
  let plain = run () in
  let log = Event.create () in
  let checker = Invariants.create ~endpoints:(Graph.endpoints g) () in
  Invariants.attach checker log;
  let obs = Obs.create ~trace:(Trace.create ()) ~events:log () in
  let with_obs = run ~obs () in
  check_stats "dynamic obs parity" plain with_obs;
  Invariants.final_check checker ~injected:with_obs.Engine.injected
    ~dropped:with_obs.Engine.dropped ~delivered:with_obs.Engine.delivered
    ~sends:with_obs.Engine.sends ~failed_sends:with_obs.Engine.failed_sends
    ~total_cost:with_obs.Engine.total_cost ~remaining:with_obs.Engine.remaining;
  if not (Invariants.ok checker) then Alcotest.fail (Invariants.report checker);
  let events = Event.to_array log in
  Alcotest.(check int) "one Epoch_change per epoch" 2
    (count (function Event.Epoch_change _ -> true | _ -> false) events);
  Alcotest.(check int) "trace samples every step" 400
    (Trace.length (Option.get obs.Obs.trace));
  let labels = List.map (fun t -> t.Span.label) (Span.totals obs.Obs.spans) in
  Alcotest.(check bool) "decide span" true (List.mem "engine/decide" labels);
  match List.assoc_opt "engine.delivered" (Metrics.snapshot obs.Obs.metrics) with
  | Some (Metrics.Counter d) ->
      Alcotest.(check int) "delivered counter" with_obs.Engine.delivered d
  | _ -> Alcotest.fail "engine.delivered counter missing"

let test_quantized_obs_parity () =
  let g, c = small_instance 13 in
  let config =
    { Workload.horizon = 300; attempts = 200; slack = 10; interference_free = true }
  in
  let w =
    Workload.flows ~conflict:c config ~rng:(Prng.create 13) ~graph:g ~cost:Cost.length
      ~num_flows:2
  in
  let params = Balancing.params ~threshold:2. ~gamma:0.1 ~capacity:50 in
  let run ?obs () =
    Quantized_engine.run_mac_given ~cooldown:100 ?obs ~pad:c ~quantum:2 ~graph:g
      ~cost:Cost.length ~params w
  in
  let plain = run () in
  let log = Event.create () in
  let checker = Invariants.create ~endpoints:(Graph.endpoints g) () in
  Invariants.attach checker log;
  let obs = Obs.create ~events:log () in
  let with_obs = run ~obs () in
  check_stats "quantized obs parity" plain.Quantized_engine.base
    with_obs.Quantized_engine.base;
  Alcotest.(check int) "control messages unchanged"
    plain.Quantized_engine.control_messages with_obs.Quantized_engine.control_messages;
  let s = with_obs.Quantized_engine.base in
  Invariants.final_check checker ~injected:s.Engine.injected ~dropped:s.Engine.dropped
    ~delivered:s.Engine.delivered ~sends:s.Engine.sends
    ~failed_sends:s.Engine.failed_sends ~total_cost:s.Engine.total_cost
    ~remaining:s.Engine.remaining;
  if not (Invariants.ok checker) then Alcotest.fail (Invariants.report checker);
  Alcotest.(check int) "one Height_advert per control message"
    with_obs.Quantized_engine.control_messages
    (count (function Event.Height_advert _ -> true | _ -> false) (Event.to_array log));
  (match List.assoc_opt "quantized.control_messages" (Metrics.snapshot obs.Obs.metrics) with
  | Some (Metrics.Counter cm) ->
      Alcotest.(check int) "control counter matches stats"
        with_obs.Quantized_engine.control_messages cm
  | _ -> Alcotest.fail "quantized.control_messages counter missing");
  let labels = List.map (fun t -> t.Span.label) (Span.totals obs.Obs.spans) in
  Alcotest.(check bool) "advertise span" true (List.mem "engine/advertise" labels)

(* ------------------------------------------------------------------ *)
(* Domprof: per-domain timelines, pool integration, chrome export      *)

module Domprof = Obs.Domprof
module Chrome_trace = Obs.Chrome_trace
module Pool = Adhoc_util.Pool

let test_domprof_merge_order () =
  (* Record out of slot order; [entries] must come back slot-major, each
     lane in append (closing) order — the deterministic merge. *)
  let dp = Domprof.create ~slots:4 () in
  Domprof.begin_chunk dp ~label:"k" ~slot:2 ~lo:20 ~hi:30;
  Domprof.end_chunk dp ~slot:2;
  Domprof.begin_chunk dp ~label:"k" ~slot:1 ~lo:10 ~hi:20;
  Domprof.end_chunk dp ~slot:1;
  Domprof.begin_region dp ~label:"k" ~items:30;
  Domprof.end_region dp;
  Alcotest.(check int) "three closed entries" 3 (Domprof.length dp);
  let es = Domprof.entries dp in
  Alcotest.(check (list int)) "slot-major order" [ 0; 1; 2 ]
    (Array.to_list (Array.map (fun e -> e.Domprof.slot) es));
  (match es.(0).Domprof.kind with
  | Domprof.Region -> ()
  | _ -> Alcotest.fail "slot-0 entry should be the region");
  Alcotest.(check int) "region covers the items" 30 es.(0).Domprof.hi;
  Alcotest.(check int) "slot-1 chunk lo" 10 es.(1).Domprof.lo;
  Alcotest.(check int) "slot-2 chunk hi" 30 es.(2).Domprof.hi;
  Domprof.reset dp;
  Alcotest.(check int) "reset drops entries" 0 (Domprof.length dp)

let test_domprof_nesting_order () =
  let dp = Domprof.create () in
  Domprof.begin_scope dp ~label:"outer";
  Domprof.begin_scope dp ~label:"inner";
  Domprof.end_scope dp;
  Domprof.end_scope dp;
  let es = Domprof.entries dp in
  Alcotest.(check (list string))
    "children close before parents" [ "inner"; "outer" ]
    (Array.to_list (Array.map (fun e -> e.Domprof.label) es));
  Array.iter
    (fun e -> Alcotest.(check bool) "t1 >= t0" true (e.Domprof.t1 >= e.Domprof.t0))
    es

let test_domprof_unbalanced () =
  let dp = Domprof.create ~slots:2 () in
  Alcotest.(check bool) "end without begin raises" true
    (try
       Domprof.end_scope dp;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "slot out of range raises" true
    (try
       Domprof.begin_chunk dp ~label:"x" ~slot:5 ~lo:0 ~hi:1;
       false
     with Invalid_argument _ -> true);
  (* An open (unclosed) mark is not merged. *)
  Domprof.begin_scope dp ~label:"open";
  Alcotest.(check int) "open mark not counted" 0 (Domprof.length dp);
  Alcotest.(check int) "open mark not merged" 0 (Array.length (Domprof.entries dp))

let test_domprof_growth () =
  (* Push one lane far past its initial capacity; nothing is dropped and
     append order survives the reallocation. *)
  let dp = Domprof.create ~slots:1 () in
  let n = 300 in
  for i = 0 to n - 1 do
    Domprof.begin_scope dp ~label:(string_of_int i);
    Domprof.end_scope dp
  done;
  Alcotest.(check int) "grows past initial capacity" n (Domprof.length dp);
  let es = Domprof.entries dp in
  Alcotest.(check string) "first kept" "0" es.(0).Domprof.label;
  Alcotest.(check string) "last kept" (string_of_int (n - 1)) es.(n - 1).Domprof.label

let test_span_domprof_scopes () =
  (* A span profiler created with a recorder mirrors every instance as a
     Scope entry on lane 0. *)
  let dp = Domprof.create () in
  let s = Span.create ~domprof:dp () in
  Span.time s "outer" (fun () -> Span.time s "inner" (fun () -> ()));
  let es = Domprof.entries dp in
  Alcotest.(check (list string))
    "one Scope per span instance, closing order" [ "inner"; "outer" ]
    (Array.to_list (Array.map (fun e -> e.Domprof.label) es));
  Array.iter
    (fun e ->
      match e.Domprof.kind with
      | Domprof.Scope -> ()
      | _ -> Alcotest.fail "span instances record as Scope")
    es

let test_domprof_pool_timeline () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let dp = Domprof.create ~slots:(Pool.jobs pool) () in
      let sink = Obs.create ~domprof:dp () in
      Obs.attach_pool sink pool;
      let n = 300 in
      let a = Array.make n 0 in
      Pool.parallel_for pool ~label:"fill" n (fun i -> a.(i) <- i + 1);
      Obs.detach_pool pool;
      Alcotest.(check int) "work actually ran" n
        (Array.fold_left (fun acc v -> if v > 0 then acc + 1 else acc) 0 a);
      let es = Array.to_list (Domprof.entries dp) in
      let regions = List.filter (fun e -> e.Domprof.kind = Domprof.Region) es in
      let chunks = List.filter (fun e -> e.Domprof.kind = Domprof.Chunk) es in
      Alcotest.(check int) "one region" 1 (List.length regions);
      Alcotest.(check int) "one chunk per slot" 3 (List.length chunks);
      (* Chunk boundaries are a function of (n, k) only: [i*n/k, (i+1)*n/k). *)
      let expect = List.init 3 (fun i -> (i, i * n / 3, (i + 1) * n / 3)) in
      let got =
        List.sort compare
          (List.map (fun e -> (e.Domprof.slot, e.Domprof.lo, e.Domprof.hi)) chunks)
      in
      Alcotest.(check bool) "deterministic chunk ranges" true (got = expect);
      match Domprof.summary dp with
      | None -> Alcotest.fail "summary missing after a parallel region"
      | Some s ->
          Alcotest.(check int) "chunks counted" 3 s.Domprof.chunks;
          Alcotest.(check int) "chunk items cover the range" n s.Domprof.chunk_items;
          Alcotest.(check bool) "imbalance >= 1" true (s.Domprof.imbalance >= 1.0);
          Alcotest.(check bool) "busy_max >= busy_min" true
            (s.Domprof.busy_max >= s.Domprof.busy_min))

let test_domprof_jobs1_timeline () =
  (* The sequential fast path still reports its single slot-0 chunk, so a
     --jobs 1 run produces a usable timeline. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let dp = Domprof.create () in
      let sink = Obs.create ~domprof:dp () in
      Obs.attach_pool sink pool;
      Pool.parallel_for pool ~label:"seq" 10 (fun _ -> ());
      Obs.detach_pool pool;
      let es = Array.to_list (Domprof.entries dp) in
      let chunks = List.filter (fun e -> e.Domprof.kind = Domprof.Chunk) es in
      match chunks with
      | [ c ] ->
          Alcotest.(check int) "slot 0" 0 c.Domprof.slot;
          Alcotest.(check int) "lo" 0 c.Domprof.lo;
          Alcotest.(check int) "hi" 10 c.Domprof.hi
      | _ -> Alcotest.fail "expected exactly one chunk on the k=1 path")

(* ------------------------------------------------------------------ *)
(* GC telemetry                                                        *)

let test_span_gc_delta () =
  let s = Span.create ~gc:true () in
  Span.time s "alloc" (fun () ->
      let acc = ref [] in
      for i = 0 to 9_999 do
        acc := (i, float_of_int i) :: !acc
      done;
      ignore (List.length !acc));
  match Span.totals s with
  | [ t ] ->
      Alcotest.(check bool) "minor words counted" true (t.Span.minor_words > 0.);
      Alcotest.(check bool) "promoted words non-negative" true (t.Span.promoted_words >= 0.);
      Alcotest.(check bool) "collection counts non-negative" true
        (t.Span.minor_collections >= 0 && t.Span.major_collections >= 0)
  | _ -> Alcotest.fail "one span expected"

let test_span_gc_disabled_zero () =
  (* Without [~gc:true] the profiler never reads the GC — totals stay zero
     even when the body allocates. *)
  let s = Span.create () in
  Span.time s "alloc" (fun () -> ignore (List.init 1_000 (fun i -> (i, i))));
  match Span.totals s with
  | [ t ] ->
      check_close "minor words zero when gc off" 0. t.Span.minor_words;
      Alcotest.(check int) "collections zero when gc off" 0 t.Span.minor_collections
  | _ -> Alcotest.fail "one span expected"

let test_pool_gc_counters () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let sink = Obs.create () in
      Obs.attach_pool sink pool;
      Pool.parallel_for pool ~label:"alloc" 64 (fun _ -> ignore (Array.make 256 0.));
      Obs.detach_pool pool;
      let snap = Metrics.snapshot sink.Obs.metrics in
      let counter name =
        match List.assoc_opt name snap with
        | Some (Metrics.Counter c) -> c
        | _ -> Alcotest.failf "%s counter missing" name
      in
      Alcotest.(check int) "one region" 1 (counter "pool.regions");
      Alcotest.(check int) "items" 64 (counter "pool.items");
      (* The owner's Gc.quick_stat delta over the region: allocation split
         across domains, so only non-negativity is portable. *)
      Alcotest.(check bool) "gc.pool counters registered" true
        (counter "gc.pool.minor_words" >= 0
        && counter "gc.pool.promoted_words" >= 0
        && counter "gc.pool.minor_collections" >= 0
        && counter "gc.pool.major_collections" >= 0);
      match List.assoc_opt "pool.chunk_items" snap with
      | Some (Metrics.Histogram { total; sum; _ }) ->
          Alcotest.(check int) "one observation per chunk" 2 total;
          check_close "chunk sizes sum to the item count" 64. sum
      | _ -> Alcotest.fail "pool.chunk_items histogram missing")

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let count_occurrences ~needle s =
  let nl = String.length needle and sl = String.length s in
  let rec go i acc =
    if i + nl > sl then acc
    else if String.equal (String.sub s i nl) needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_chrome_trace_shape () =
  let dp = Domprof.create ~slots:2 () in
  Domprof.begin_region dp ~label:"r" ~items:10;
  Domprof.begin_chunk dp ~label:"r" ~slot:1 ~lo:5 ~hi:10;
  Domprof.end_chunk dp ~slot:1;
  Domprof.end_region dp;
  Domprof.begin_scope dp ~label:"quoted \"label\"";
  Domprof.end_scope dp;
  let s = Chrome_trace.to_string ~process_name:"test" dp in
  Alcotest.(check bool) "catapult envelope" true (contains s "{\"traceEvents\": [");
  Alcotest.(check bool) "display unit" true (contains s "\"displayTimeUnit\": \"ms\"");
  Alcotest.(check bool) "process metadata" true (contains s "\"process_name\"");
  Alcotest.(check bool) "caller thread named" true (contains s "slot 0 (caller)");
  Alcotest.(check bool) "worker thread named" true (contains s "slot 1 (worker 0)");
  Alcotest.(check bool) "labels are JSON-escaped" true (contains s "quoted \\\"label\\\"");
  Alcotest.(check int) "one complete event per entry" (Domprof.length dp)
    (count_occurrences ~needle:"\"ph\": \"X\"" s);
  Alcotest.(check bool) "chunk range in args" true
    (contains s "\"args\": {\"lo\": 5, \"hi\": 10, \"items\": 5}")

(* ------------------------------------------------------------------ *)
(* Profiling bit-identity: recording must not change any computed bit  *)

let test_golden_profiled () =
  (* The strongest sink we can build — metrics, spans with GC deltas, a
     timeline recorder — and the seed goldens must not move. *)
  let dp = Domprof.create () in
  let obs = Obs.create ~domprof:dp ~gc:true () in
  check_stats "pad+profiled" golden_pad (run_pad ~obs ());
  Alcotest.(check bool) "timeline recorded" true (Domprof.length dp > 0);
  let obs = Obs.create ~domprof:(Domprof.create ()) ~gc:true () in
  check_stats "csma+profiled" golden_csma (run_csma ~obs ())

let edge_list g = List.init (Graph.num_edges g) (Graph.endpoints g)

let test_profiled_pool_bit_identity =
  qtest "profiling on/off never changes pool-built outputs" ~count:10 seed_gen
    (fun seed ->
      let points = points_of_seed ~min_n:10 ~max_n:40 seed in
      let range = 2. *. Adhoc_topo.Udg.critical_range points in
      let build ?pool () =
        edge_list
          (Adhoc_topo.Theta_alg.overlay
             (Adhoc_topo.Theta_alg.build ?pool ~theta:(Float.pi /. 6.) ~range points))
      in
      let reference = build () in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let dp = Domprof.create ~slots:(Pool.jobs pool) () in
              let sink = Obs.create ~domprof:dp ~gc:true () in
              Obs.attach_pool sink pool;
              let profiled = build ~pool () in
              Obs.detach_pool pool;
              let plain = build ~pool () in
              profiled = reference && plain = reference))
        [ 1; 2; 4 ])

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          case "counter" test_metrics_counter;
          case "gauge" test_metrics_gauge;
          case "histogram boundaries" test_metrics_histogram_boundaries;
          case "kind clash" test_metrics_kind_clash;
          case "bad buckets" test_metrics_bad_buckets;
          case "snapshot sorted" test_metrics_snapshot_sorted;
        ] );
      ( "span",
        [
          case "nesting" test_span_nesting;
          case "unbalanced leave" test_span_unbalanced_leave;
          case "time is exception-safe" test_span_time_exception_safe;
          case "reset" test_span_reset;
          case "self (exclusive) time" test_span_self_time;
        ] );
      ( "event log",
        [
          case "record/get roundtrip" test_event_roundtrip;
          case "growth" test_event_growth;
          case "observer" test_event_observer;
          case "jsonl roundtrip is exact" test_event_jsonl_roundtrip;
          case "jsonl rejects bad input" test_event_jsonl_rejects;
        ] );
      ( "invariants",
        [
          case "clean log passes" test_invariants_clean;
          case "non-monotone steps" test_invariants_monotone;
          case "send from empty buffer" test_invariants_empty_buffer;
          case "delivered away from destination" test_invariants_delivered_wrong_node;
          case "moved at destination" test_invariants_moved_at_destination;
          case "spurious Deliver" test_invariants_spurious_deliver;
          case "missing Deliver" test_invariants_missing_deliver;
          case "endpoints mismatch" test_invariants_endpoints;
          case "inactive edge" test_invariants_edge_active;
          case "final stats reconciliation" test_invariants_final_check;
          case "violation cap" test_invariants_cap;
        ] );
      ( "engine events",
        [
          case "pad golden with events + checker" test_events_golden_pad;
          case "plain golden with events + checker" test_events_golden_plain;
          case "csma golden with events + checker" test_events_golden_csma;
          case "collisions are checked" test_events_collisions_checked;
        ] );
      ( "journey",
        [
          case "replay matches tracked engine" test_journey_matches_tracked;
          case "replay survives the jsonl roundtrip" test_journey_survives_jsonl;
          test_journey_matches_tracked_random;
          case "corrupt log flagged" test_journey_flags_corrupt_log;
          case "edge table and timeline" test_journey_edge_table;
        ] );
      ( "engine variants",
        [
          case "dynamic engine obs parity" test_dynamic_obs_parity;
          case "quantized engine obs parity" test_quantized_obs_parity;
        ] );
      ( "trace",
        [
          case "stride" test_trace_stride;
          case "growth" test_trace_growth;
          case "jsonl lines" test_trace_jsonl_lines;
          case "csv shape" test_trace_csv_shape;
        ] );
      ( "engine golden",
        [
          case "obs disabled pins seed stats" test_golden_disabled;
          case "obs enabled is bit-identical" test_golden_enabled;
          case "csma with obs + stride" test_golden_enabled_csma;
          case "trace deltas sum to stats" test_trace_deltas_sum;
          case "tracked engine unchanged" test_tracked_engine_obs_identical;
        ] );
      ( "domprof",
        [
          case "deterministic slot-major merge" test_domprof_merge_order;
          case "children close before parents" test_domprof_nesting_order;
          case "unbalanced marks rejected" test_domprof_unbalanced;
          case "lane growth past initial capacity" test_domprof_growth;
          case "span instances mirror as scopes" test_span_domprof_scopes;
          case "pool region timeline" test_domprof_pool_timeline;
          case "jobs=1 fast path still records" test_domprof_jobs1_timeline;
        ] );
      ( "gc telemetry",
        [
          case "span gc deltas" test_span_gc_delta;
          case "gc off means zero" test_span_gc_disabled_zero;
          case "pool gc counters + chunk histogram" test_pool_gc_counters;
        ] );
      ( "chrome trace",
        [ case "trace-event document shape" test_chrome_trace_shape ] );
      ( "profiling bit-identity",
        [
          case "engine goldens under full profiling" test_golden_profiled;
          test_profiled_pool_bit_identity;
        ] );
    ]
