(* Shard.map_nodes and the tiled construction paths.

   The qcheck suites elsewhere use small point sets, which [Shard] serves
   from one global grid; these tests use n ≥ 4096 so the per-tile
   ghost-zone machinery is actually exercised, and pin it against the
   global grid and brute-force oracles. *)

module Spatial_grid = Adhoc_geom.Spatial_grid
module Shard = Adhoc_geom.Shard
module Pool = Adhoc_util.Pool
module Graph = Adhoc_graph.Graph
open Adhoc_topo
open Helpers

(* Large enough that by_load = floor (sqrt (n / 1024)) ≥ 2: tiled. *)
let big_n = 4608
let range = 0.04

let big_points seed = Adhoc_pointset.Generators.uniform (Prng.create seed) big_n

let digest g =
  Graph.fold_edges g ~init:[] ~f:(fun acc id e ->
      (id, e.Graph.u, e.Graph.v, e.Graph.len) :: acc)

(* ------------------------------------------------------------------ *)
(* map_nodes vs the global grid                                        *)

let test_map_nodes_matches_global =
  qtest "sharded range queries = global grid" ~count:5 seed_gen (fun seed ->
      let points = big_points seed in
      let query = range *. (1. +. 1e-9) in
      let answer grid u =
        List.sort Int.compare (Spatial_grid.indices_within grid points.(u) query)
      in
      let sharded = Shard.map_nodes ~range points ~f:answer in
      let global = Spatial_grid.build ~cell:range points in
      let ok = ref true in
      Array.iteri (fun u got -> if got <> answer global u then ok := false) sharded;
      !ok)

let test_map_nodes_jobs_invariant =
  qtest "map_nodes bit-identical across jobs" ~count:3 seed_gen (fun seed ->
      let points = big_points seed in
      let query = range *. (1. +. 1e-9) in
      let answer grid u =
        List.sort Int.compare (Spatial_grid.indices_within grid points.(u) query)
      in
      let sequential = Shard.map_nodes ~range points ~f:answer in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              Shard.map_nodes ~pool ~range points ~f:answer = sequential))
        [ 1; 2; env_jobs () ])

let test_map_nodes_degenerate () =
  Alcotest.(check int) "n=0" 0 (Array.length (Shard.map_nodes ~range [||] ~f:(fun _ u -> u)));
  let one = [| Point.make 0.5 0.5 |] in
  let r = Shard.map_nodes ~range one ~f:(fun grid u -> Spatial_grid.indices_within grid one.(u) range) in
  Alcotest.(check int) "n=1 total" 1 (Array.length r);
  Alcotest.(check (list int)) "n=1 self" [ 0 ] r.(0)

(* ------------------------------------------------------------------ *)
(* Empty / tiny grids                                                  *)

let test_empty_grid_total () =
  let g = Spatial_grid.build ~cell:1. [||] in
  Alcotest.(check int) "length" 0 (Spatial_grid.length g);
  Alcotest.(check (list int)) "query empty" [] (Spatial_grid.indices_within g Point.origin 10.);
  Alcotest.(check (option int)) "nearest none" None (Spatial_grid.nearest_other g 0)

let test_build_indexed_subset () =
  let pts = [| Point.make 0.1 0.1; Point.make 0.2 0.2; Point.make 0.9 0.9 |] in
  let g = Spatial_grid.build_indexed ~cell:0.5 pts [| 2; 0 |] in
  Alcotest.(check int) "length" 2 (Spatial_grid.length g);
  let near = List.sort Int.compare (Spatial_grid.indices_within g (Point.make 0.15 0.15) 0.2) in
  (* id 1 is not in the subset; answers carry the original ids. *)
  Alcotest.(check (list int)) "subset ids" [ 0 ] near;
  let far = List.sort Int.compare (Spatial_grid.indices_within g (Point.make 0.9 0.9) 0.05) in
  Alcotest.(check (list int)) "far id" [ 2 ] far

(* ------------------------------------------------------------------ *)
(* Tiled constructions vs oracles                                      *)

let brute_udg points range =
  let n = Array.length points in
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Point.dist points.(u) points.(v) in
      if d <= range then Graph.Builder.add_edge b u v d
    done
  done;
  Graph.Builder.build b

let test_udg_tiled_matches_brute () =
  let points = big_points 42 in
  let tiled = Udg.build ~range points in
  let brute = brute_udg points range in
  Alcotest.(check int) "num_edges" (Graph.num_edges brute) (Graph.num_edges tiled);
  if digest tiled <> digest brute then Alcotest.fail "tiled UDG differs from brute oracle"

let test_constructions_jobs_invariant_tiled () =
  let points = big_points 7 in
  let theta = Float.pi /. 3. in
  let builds pool =
    [
      digest (Udg.build ?pool ~range points);
      digest (Yao.graph ?pool ~theta ~range points);
      digest (Theta_graph.build ?pool ~theta ~range points);
      digest (Theta_alg.overlay (Theta_alg.build ?pool ~theta ~range points));
      digest (fst (Theta_protocol.run ?pool ~theta ~range points));
    ]
  in
  let sequential = builds None in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          if builds (Some pool) <> sequential then
            Alcotest.failf "tiled construction differs at jobs=%d" jobs))
    [ 2; env_jobs () ]

let () =
  Alcotest.run "shard"
    [
      ( "map_nodes",
        [
          test_map_nodes_matches_global;
          test_map_nodes_jobs_invariant;
          case "degenerate" test_map_nodes_degenerate;
        ] );
      ( "grid",
        [ case "empty total" test_empty_grid_total; case "build_indexed" test_build_indexed_subset ]
      );
      ( "constructions",
        [
          case "udg = brute at tiled scale" test_udg_tiled_matches_brute;
          case "jobs-invariant at tiled scale" test_constructions_jobs_invariant_tiled;
        ] );
    ]
