(* Adhoc_util.Pool: deterministic chunking/reduction unit tests, plus the
   jobs-invariance pin: every ?pool-taking kernel must produce output
   bit-identical to its sequential path for jobs ∈ {1, 2, 4} (and for the
   CI matrix value in ADHOC_JOBS). *)

open Helpers
module Pool = Adhoc_util.Pool
module Graph = Adhoc_graph.Graph
module Topo = Adhoc_topo
module Point = Adhoc_geom.Point

let jobs_sweep =
  let base = [ 1; 2; 4 ] in
  let e = env_jobs () in
  if List.mem e base then base else base @ [ e ]

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)

let test_each_index_once () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.parallel_for p n (fun i -> hits.(i) <- hits.(i) + 1);
              for i = 0 to n - 1 do
                if hits.(i) <> 1 then
                  Alcotest.failf "jobs=%d n=%d: index %d ran %d times" jobs n i hits.(i)
              done)
            [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 17; 64 ]))
    [ 1; 2; 3; 4; 5 ]

let test_parallel_init_matches () =
  let f i = (i * 31) + (i mod 7) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          List.iter
            (fun n ->
              Alcotest.(check (array int))
                (Printf.sprintf "init jobs=%d n=%d" jobs n)
                (Array.init n f) (Pool.parallel_init p n f))
            [ 0; 1; 2; 5; 16; 33 ]))
    jobs_sweep

let test_map_reduce_order () =
  (* Deliberately non-associative, non-commutative fold: only the exact
     sequential order reproduces it. *)
  let n = 57 in
  let seq = ref 0 in
  for i = 0 to n - 1 do
    seq := (!seq * 31) + i
  done;
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let got =
            Pool.map_reduce p ~n ~map:(fun i -> i) ~init:0 ~fold:(fun acc x -> (acc * 31) + x) ()
          in
          Alcotest.(check int) (Printf.sprintf "map_reduce jobs=%d" jobs) !seq got))
    jobs_sweep

let test_exception_lowest_index () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let raised =
            try
              Pool.parallel_for p 32 (fun i -> if i >= 13 then failwith (string_of_int i));
              "none"
            with Failure m -> m
          in
          Alcotest.(check string)
            (Printf.sprintf "lowest failing index surfaces at jobs=%d" jobs)
            "13" raised))
    jobs_sweep;
  (* The pool survives a raising region. *)
  Pool.with_pool ~jobs:3 (fun p ->
      (try Pool.parallel_for p 8 (fun _ -> failwith "boom") with Failure _ -> ());
      Alcotest.(check (array int)) "usable after exception" [| 0; 1; 2; 3 |]
        (Pool.parallel_init p 4 (fun i -> i)))

let test_reuse_and_shutdown () =
  let p = Pool.create ~jobs:4 () in
  Alcotest.(check int) "jobs" 4 (Pool.jobs p);
  let a = Pool.parallel_init p 100 (fun i -> i * i) in
  let b = Pool.parallel_init p 100 (fun i -> i * i) in
  Alcotest.(check (array int)) "reuse gives same result" a b;
  Pool.shutdown p;
  Pool.shutdown p;
  (* After shutdown regions fall back to inline execution. *)
  Alcotest.(check (array int)) "inline after shutdown" (Array.init 9 succ)
    (Pool.parallel_init p 9 succ)

let test_nested_runs_inline () =
  Pool.with_pool ~jobs:4 (fun p ->
      let out = Array.make 12 (-1) in
      Pool.parallel_for p 3 (fun i ->
          (* Nested region: must run inline (no deadlock) and still cover
             its whole range. *)
          Pool.parallel_for p 4 (fun j -> out.((i * 4) + j) <- (i * 4) + j));
      Alcotest.(check (array int)) "nested coverage" (Array.init 12 (fun i -> i)) out)

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun p -> Alcotest.(check int) "jobs >= 1" 1 (Pool.jobs p));
  Alcotest.(check bool) "default jobs sane" true
    (let j = Pool.default_jobs () in
     j >= 1 && j <= 64)

(* ------------------------------------------------------------------ *)
(* Jobs-invariance: parallel ≡ sequential, bit-identical               *)

(* Full structural digest: ids, endpoints and float lengths (never nan),
   so polymorphic equality is bit-exact. *)
let digest g =
  ( Graph.n g,
    Graph.fold_edges g ~init:[] ~f:(fun acc id e ->
        (id, e.Graph.u, e.Graph.v, e.Graph.len) :: acc) )

let check_graph_invariant name build =
  qtest name ~count:30 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let reference = digest (build None points) in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p -> digest (build (Some p) points) = reference))
        jobs_sweep)

let range_of points = Float.max 1e-6 (Topo.Udg.critical_range points) *. 1.2

let theta = Float.pi /. 3.

let graph_kernels =
  [
    ("yao", fun pool points -> Topo.Yao.graph ?pool ~theta ~range:(range_of points) points);
    ( "theta-graph",
      fun pool points -> Topo.Theta_graph.build ?pool ~theta ~range:(range_of points) points );
    ( "theta-alg overlay",
      fun pool points ->
        Topo.Theta_alg.overlay (Topo.Theta_alg.build ?pool ~theta ~range:(range_of points) points)
    );
    ( "theta-protocol",
      fun pool points -> fst (Topo.Theta_protocol.run ?pool ~theta ~range:(range_of points) points)
    );
    ("udg", fun pool points -> Topo.Udg.build ?pool ~range:(range_of points) points);
    ("gabriel", fun pool points -> Topo.Gabriel.build ?pool points);
    ("rng", fun pool points -> Topo.Rng_graph.build ?pool points);
    ("knn", fun pool points -> Topo.Knn.build ?pool ~k:3 points);
    ("beta-skeleton lune", fun pool points -> Topo.Beta_skeleton.build ?pool ~beta:1.7 points);
    ("beta-skeleton lens", fun pool points -> Topo.Beta_skeleton.build ?pool ~beta:0.8 points);
    ("cbtc sym", fun pool points -> (Topo.Cbtc.build ?pool ~alpha:(2. *. Float.pi /. 3.) ~range:(range_of points) points).Topo.Cbtc.graph);
    ("cbtc asym", fun pool points -> (Topo.Cbtc.build ?pool ~alpha:(2. *. Float.pi /. 3.) ~range:(range_of points) points).Topo.Cbtc.asymmetric);
  ]

let test_selections_invariant =
  qtest "yao selections jobs-invariant" ~count:30 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let range = range_of points in
      let reference = Topo.Yao.selections ~theta ~range points in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p -> Topo.Yao.selections ~pool:p ~theta ~range points = reference))
        jobs_sweep)

let test_protocol_stats_invariant =
  qtest "theta-protocol stats jobs-invariant" ~count:30 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let range = range_of points in
      let _, reference = Topo.Theta_protocol.run ~theta ~range points in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p ->
              snd (Topo.Theta_protocol.run ~pool:p ~theta ~range points) = reference))
        jobs_sweep)

let test_cbtc_radii_invariant =
  qtest "cbtc radii jobs-invariant" ~count:30 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let range = range_of points in
      let alpha = 2. *. Float.pi /. 3. in
      let reference = (Topo.Cbtc.build ~alpha ~range points).Topo.Cbtc.radii in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p ->
              (Topo.Cbtc.build ~pool:p ~alpha ~range points).Topo.Cbtc.radii = reference))
        jobs_sweep)

let test_all_pairs_invariant =
  qtest "dijkstra all-pairs jobs-invariant" ~count:30 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let g = Topo.Udg.build ~range:(range_of points) points in
      let cost = Adhoc_graph.Cost.energy ~kappa:2. in
      let reference = Adhoc_graph.Dijkstra.all_pairs g ~cost in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p -> Adhoc_graph.Dijkstra.all_pairs ~pool:p g ~cost = reference))
        jobs_sweep)

let test_stretch_invariant =
  qtest "stretch sweeps jobs-invariant" ~count:20 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let range = range_of points in
      let base = Topo.Udg.build ~range points in
      let sub =
        Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points)
      in
      let cost = Adhoc_graph.Cost.energy ~kappa:2. in
      let module S = Adhoc_graph.Stretch in
      let r_prof = S.per_edge_profile ~sub ~base ~cost () in
      let r_edge = S.over_base_edges ~sub ~base ~cost () in
      let r_euc = S.vs_euclidean ~sub ~points () in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p ->
              (* nan = nan must count as equal in the profile: compare with
                 Float.compare, which orders nan deterministically. *)
              Array.for_all2
                (fun a b ->
                  let c = Float.compare a b in
                  c = 0)
                (S.per_edge_profile ~pool:p ~sub ~base ~cost ())
                r_prof
              && (let c = Float.compare (S.over_base_edges ~pool:p ~sub ~base ~cost ()) r_edge in
                  c = 0)
              &&
              let c = Float.compare (S.vs_euclidean ~pool:p ~sub ~points ()) r_euc in
              c = 0))
        jobs_sweep)

let test_conflict_invariant =
  qtest "conflict sets jobs-invariant" ~count:20 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let range = range_of points in
      let g =
        Topo.Theta_alg.overlay (Topo.Theta_alg.build ~theta ~range points)
      in
      let model = Adhoc_interference.Model.make ~delta:0.5 in
      let reference = (Adhoc_interference.Conflict.build model ~points g).Adhoc_interference.Conflict.sets in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun p ->
              (Adhoc_interference.Conflict.build ~pool:p model ~points g)
                .Adhoc_interference.Conflict.sets = reference))
        jobs_sweep)

(* ------------------------------------------------------------------ *)
(* Grid paths vs brute oracles                                         *)

let test_beta_vs_brute =
  qtest "beta-skeleton grid = brute oracle" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed seed in
      List.for_all
        (fun beta ->
          digest (Topo.Beta_skeleton.build ~beta points)
          = digest (Topo.Beta_skeleton.build_brute ~beta points))
        [ 0.8; 1.0; 1.7; 2.0 ])

let test_knn_vs_brute =
  qtest "knn grid = brute oracle" ~count:40 seed_gen (fun seed ->
      let points = points_of_seed seed in
      List.for_all
        (fun k ->
          digest (Topo.Knn.build ~k points) = digest (Topo.Knn.build_brute ~k points)
          &&
          let range = range_of points in
          digest (Topo.Knn.build ~range ~k points) = digest (Topo.Knn.build_brute ~range ~k points))
        [ 1; 3; 7 ])

let test_cbtc_vs_brute =
  qtest "cbtc radii match coverage_ok growth" ~count:30 seed_gen (fun seed ->
      let points = points_of_seed seed in
      let range = range_of points in
      let alpha = 2. *. Float.pi /. 3. in
      let t = Topo.Cbtc.build ~alpha ~range points in
      let n = Array.length points in
      let ok = ref true in
      for u = 0 to n - 1 do
        let dists =
          Array.to_list points
          |> List.filteri (fun v _ -> v <> u)
          |> List.map (Point.dist points.(u))
          |> List.filter (fun d -> d <= range)
          |> List.sort Float.compare
        in
        let rec grow = function
          | [] -> range
          | d :: rest -> if Topo.Cbtc.coverage_ok ~alpha points u d then d else grow rest
        in
        let c = Float.compare (grow dists) t.Topo.Cbtc.radii.(u) in
        if c <> 0 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pool"
    [
      ( "mechanics",
        [
          case "each index exactly once" test_each_index_once;
          case "parallel_init = Array.init" test_parallel_init_matches;
          case "map_reduce sequential order" test_map_reduce_order;
          case "exception from lowest index" test_exception_lowest_index;
          case "reuse and shutdown" test_reuse_and_shutdown;
          case "nested regions inline" test_nested_runs_inline;
          case "jobs clamped" test_jobs_clamped;
        ] );
      ( "jobs-invariance",
        List.map (fun (name, b) -> check_graph_invariant (name ^ " jobs-invariant") b) graph_kernels
        @ [
            test_selections_invariant;
            test_protocol_stats_invariant;
            test_cbtc_radii_invariant;
            test_all_pairs_invariant;
            test_stretch_invariant;
            test_conflict_invariant;
          ] );
      ( "grid-vs-brute",
        [ test_beta_vs_brute; test_knn_vs_brute; test_cbtc_vs_brute ] );
    ]
