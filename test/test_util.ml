module Pqueue = Adhoc_util.Pqueue
module Union_find = Adhoc_util.Union_find
module Stats = Adhoc_util.Stats
module Table = Adhoc_util.Table
open Helpers

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "out of range: %d" x
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_uniform_range () =
  let rng = Prng.create 6 in
  for _ = 1 to 10_000 do
    let x = Prng.uniform rng in
    if x < 0. || x >= 1. then Alcotest.failf "uniform out of range: %f" x
  done

let test_prng_uniform_mean () =
  let rng = Prng.create 7 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "uniform mean off: %f" mean

let test_prng_gaussian_moments () =
  let rng = Prng.create 8 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Prng.gaussian rng ~mean:3. ~stddev:2.) in
  let mean = Stats.mean xs and sd = Stats.stddev xs in
  if Float.abs (mean -. 3.) > 0.05 then Alcotest.failf "gaussian mean off: %f" mean;
  if Float.abs (sd -. 2.) > 0.05 then Alcotest.failf "gaussian stddev off: %f" sd

let test_prng_exponential_mean () =
  let rng = Prng.create 9 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Prng.exponential rng ~rate:4.) in
  let mean = Stats.mean xs in
  if Float.abs (mean -. 0.25) > 0.01 then Alcotest.failf "exponential mean off: %f" mean

let test_prng_shuffle_permutation () =
  let rng = Prng.create 10 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_sample_without_replacement () =
  let rng = Prng.create 11 in
  for _ = 1 to 100 do
    let s = Prng.sample_without_replacement rng 10 30 in
    Alcotest.(check int) "size" 10 (Array.length s);
    let sorted = List.sort_uniq compare (Array.to_list s) in
    Alcotest.(check int) "distinct" 10 (List.length sorted);
    List.iter (fun x -> if x < 0 || x >= 30 then Alcotest.fail "element out of range") sorted
  done

let test_prng_split_independent () =
  let rng = Prng.create 12 in
  let child = Prng.split rng in
  (* Consuming the child must not change the parent's future stream relative
     to a replayed parent. *)
  let replay = Prng.create 12 in
  let _ = Prng.split replay in
  ignore (Prng.bits64 child);
  ignore (Prng.bits64 child);
  Alcotest.(check int64) "parent unaffected" (Prng.bits64 replay) (Prng.bits64 rng)

let test_prng_copy () =
  let rng = Prng.create 13 in
  ignore (Prng.bits64 rng);
  let dup = Prng.copy rng in
  Alcotest.(check int64) "copy same next" (Prng.bits64 (Prng.copy rng)) (Prng.bits64 dup)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_sorted_drain =
  qtest "pqueue drains in key order" QCheck2.Gen.(list (pair (float_bound_exclusive 1000.) small_int))
    (fun entries ->
      let q = Pqueue.create () in
      List.iter (fun (k, v) -> Pqueue.push q k v) entries;
      let rec drain last acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (k, _) ->
            if k < last then failwith "out of order";
            drain k (k :: acc)
      in
      let drained = drain neg_infinity [] in
      List.length drained = List.length entries)

let test_pqueue_basic () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 3. "c";
  Pqueue.push q 1. "a";
  Pqueue.push q 2. "b";
  Alcotest.(check int) "length" 3 (Pqueue.length q);
  (match Pqueue.peek q with
  | Some (k, v) ->
      Alcotest.(check (float 0.)) "peek key" 1. k;
      Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected peek");
  let _, a = Pqueue.pop_exn q in
  let _, b = Pqueue.pop_exn q in
  let _, c = Pqueue.pop_exn q in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] [ a; b; c ];
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

let test_pqueue_pop_exn_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.check_raises "pop_exn on empty" (Invalid_argument "Pqueue.pop_exn: empty queue")
    (fun () -> ignore (Pqueue.pop_exn q))

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 1. 1;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)

let test_union_find_basic () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial count" 5 (Union_find.count uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union repeat" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check int) "count after unions" 2 (Union_find.count uf);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 1 2)

let test_union_find_all_merged =
  qtest "chain union connects everything" QCheck2.Gen.(int_range 2 100) (fun n ->
      let uf = Union_find.create n in
      for i = 0 to n - 2 do
        ignore (Union_find.union uf i (i + 1))
      done;
      Union_find.count uf = 1 && Union_find.same uf 0 (n - 1))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_mean_stddev () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Stats.mean xs);
  check_close ~eps:1e-6 "stddev" 2.13808993529939 (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close "p0" 1. (Stats.percentile xs 0.);
  check_close "p100" 4. (Stats.percentile xs 100.);
  check_close "p50" 2.5 (Stats.percentile xs 50.);
  check_close "p25" 1.75 (Stats.percentile xs 25.)

let test_stats_summarize () =
  let s = Stats.summarize [| 5.; 1.; 3. |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_close "min" 1. s.Stats.min;
  check_close "max" 5. s.Stats.max;
  check_close "median" 3. s.Stats.median;
  check_close "mean" 3. s.Stats.mean

let test_stats_linear_fit () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> 2. +. (3. *. x)) xs in
  let a, b = Stats.linear_fit xs ys in
  check_close "intercept" 2. a;
  check_close "slope" 3. b

let test_stats_loglog_slope () =
  let xs = [| 1.; 2.; 4.; 8.; 16. |] in
  let ys = Array.map (fun x -> 5. *. (x ** 3.)) xs in
  check_close ~eps:1e-6 "cubic exponent" 3. (Stats.loglog_slope xs ys)

let test_stats_log_fit () =
  let xs = [| 1.; Float.exp 1.; Float.exp 2. |] in
  let ys = [| 1.; 3.; 5. |] in
  let a, b = Stats.log_fit xs ys in
  check_close ~eps:1e-6 "intercept" 1. a;
  check_close ~eps:1e-6 "log slope" 2. b

let test_stats_correlation () =
  let xs = [| 1.; 2.; 3. |] in
  check_close "perfect" 1. (Stats.correlation xs (Array.map (fun x -> (2. *. x) +. 1.) xs));
  check_close "anti" (-1.) (Stats.correlation xs (Array.map (fun x -> -.x) xs))

let test_stats_empty_errors () =
  Alcotest.check_raises "summarize empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]));
  Alcotest.check_raises "percentile empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile [||] 50.))

let test_stats_single_element () =
  check_close "p0" 7. (Stats.percentile [| 7. |] 0.);
  check_close "p50" 7. (Stats.percentile [| 7. |] 50.);
  check_close "p100" 7. (Stats.percentile [| 7. |] 100.);
  let s = Stats.summarize [| 7. |] in
  Alcotest.(check int) "n" 1 s.Stats.n;
  check_close "mean" 7. s.Stats.mean;
  check_close "stddev" 0. s.Stats.stddev;
  check_close "min" 7. s.Stats.min;
  check_close "max" 7. s.Stats.max;
  check_close "median" 7. s.Stats.median;
  check_close "p95" 7. s.Stats.p95

let test_stats_nan_handling () =
  (* nans are dropped; the order statistics come from the clean subsample. *)
  let xs = [| Float.nan; 3.; Float.nan; 1.; 2.; 4.; Float.nan |] in
  check_close "p0 skips nan" 1. (Stats.percentile xs 0.);
  check_close "p100 skips nan" 4. (Stats.percentile xs 100.);
  check_close "p50 skips nan" 2.5 (Stats.percentile xs 50.);
  let s = Stats.summarize xs in
  Alcotest.(check int) "n counts non-nan" 4 s.Stats.n;
  check_close "mean over non-nan" 2.5 s.Stats.mean;
  check_close "min over non-nan" 1. s.Stats.min;
  check_close "max over non-nan" 4. s.Stats.max;
  check_close "median over non-nan" 2.5 s.Stats.median

let test_stats_all_nan () =
  let xs = [| Float.nan; Float.nan |] in
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Stats.percentile xs 50.));
  let s = Stats.summarize xs in
  Alcotest.(check int) "n zero" 0 s.Stats.n;
  Alcotest.(check bool) "mean nan" true (Float.is_nan s.Stats.mean);
  Alcotest.(check bool) "min nan" true (Float.is_nan s.Stats.min);
  Alcotest.(check bool) "max nan" true (Float.is_nan s.Stats.max);
  Alcotest.(check bool) "median nan" true (Float.is_nan s.Stats.median);
  Alcotest.(check bool) "p95 nan" true (Float.is_nan s.Stats.p95)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_rendering () =
  let t = Table.create ~title:"demo" [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  (* Right-aligned numbers line up on their last character. *)
  let lines = String.split_on_char '\n' s in
  let data = List.filteri (fun i _ -> i >= 3) lines in
  (match data with
  | a :: b :: _ ->
      Alcotest.(check int) "equal widths" (String.length a) (String.length b)
  | _ -> Alcotest.fail "missing rows")

let test_table_mismatch () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_float_row () =
  let t = Table.create [ ("l", Table.Left); ("x", Table.Right) ] in
  Table.add_float_row t "row" [ 1.23456 ];
  let s = Table.to_string t in
  Alcotest.(check bool) "formats floats" true (Helpers.contains s "1.235")


let test_stats_percentile_monotone =
  qtest "percentile is monotone in p" ~count:100 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let xs = Array.init (1 + Prng.int rng 50) (fun _ -> Prng.uniform rng) in
      let p1 = Prng.range rng 0. 100. and p2 = Prng.range rng 0. 100. in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-12)

let test_pqueue_duplicate_keys () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1. v) [ "a"; "b"; "c" ];
  Pqueue.push q 0. "first";
  let _, v = Pqueue.pop_exn q in
  Alcotest.(check string) "min first" "first" v;
  Alcotest.(check int) "rest remain" 3 (Pqueue.length q)

let test_prng_bool_balance () =
  let rng = Prng.create 14 in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bool rng then incr trues
  done;
  let p = float_of_int !trues /. float_of_int n in
  if Float.abs (p -. 0.5) > 0.01 then Alcotest.failf "bool biased: %f" p

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          case "determinism" test_prng_determinism;
          case "seed sensitivity" test_prng_seed_sensitivity;
          case "int bounds" test_prng_int_bounds;
          case "int rejects nonpositive" test_prng_int_rejects_nonpositive;
          case "uniform range" test_prng_uniform_range;
          case "uniform mean" test_prng_uniform_mean;
          case "gaussian moments" test_prng_gaussian_moments;
          case "exponential mean" test_prng_exponential_mean;
          case "shuffle permutation" test_prng_shuffle_permutation;
          case "sample without replacement" test_prng_sample_without_replacement;
          case "split independence" test_prng_split_independent;
          case "copy" test_prng_copy;
          case "bool balance" test_prng_bool_balance;
        ] );
      ( "pqueue",
        [
          test_pqueue_sorted_drain;
          case "basic order" test_pqueue_basic;
          case "pop_exn empty" test_pqueue_pop_exn_empty;
          case "clear" test_pqueue_clear;
          case "duplicate keys" test_pqueue_duplicate_keys;
        ] );
      ( "union_find",
        [ case "basic" test_union_find_basic; test_union_find_all_merged ] );
      ( "stats",
        [
          case "mean stddev" test_stats_mean_stddev;
          case "percentile" test_stats_percentile;
          case "summarize" test_stats_summarize;
          case "linear fit" test_stats_linear_fit;
          case "loglog slope" test_stats_loglog_slope;
          case "log fit" test_stats_log_fit;
          case "correlation" test_stats_correlation;
          case "empty errors" test_stats_empty_errors;
          case "single element" test_stats_single_element;
          case "nan handling" test_stats_nan_handling;
          case "all nan" test_stats_all_nan;
          test_stats_percentile_monotone;
        ] );
      ( "table",
        [
          case "rendering" test_table_rendering;
          case "cell mismatch" test_table_mismatch;
          case "float row" test_table_float_row;
        ] );
    ]
