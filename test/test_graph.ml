module Graph = Adhoc_graph.Graph
module Cost = Adhoc_graph.Cost
module Dijkstra = Adhoc_graph.Dijkstra
module Bfs = Adhoc_graph.Bfs
module Components = Adhoc_graph.Components
module Mst = Adhoc_graph.Mst
module Floyd_warshall = Adhoc_graph.Floyd_warshall
module Stretch = Adhoc_graph.Stretch
open Helpers

(* Random sparse graph from a seed: n nodes, each node linked to a few
   random others, plus a spanning chain with probability 1/2. *)
let random_graph seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 25 in
  let b = Graph.Builder.create n in
  if Prng.bool rng then
    for i = 0 to n - 2 do
      Graph.Builder.add_edge b i (i + 1) (Prng.range rng 0.1 2.)
    done;
  let extra = Prng.int rng (3 * n) in
  for _ = 1 to extra do
    let u = Prng.int rng n and v = Prng.int rng n in
    Graph.Builder.add_edge b u v (Prng.range rng 0.1 2.)
  done;
  Graph.Builder.build b

(* ------------------------------------------------------------------ *)
(* Builder / accessors                                                 *)

let test_builder_dedup () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_edge b 0 1 1.;
  Graph.Builder.add_edge b 1 0 2.;
  Graph.Builder.add_edge b 1 1 1.;
  Alcotest.(check bool) "mem" true (Graph.Builder.mem b 0 1);
  let g = Graph.Builder.build b in
  Alcotest.(check int) "one edge" 1 (Graph.num_edges g);
  check_close "first length wins" 1. (Graph.length g 0)

let test_builder_bounds () =
  let b = Graph.Builder.create 2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.Builder.add_edge: node out of range") (fun () ->
      Graph.Builder.add_edge b 0 5 1.)

let test_graph_accessors () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.); (0, 3, 4.) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.num_edges g);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  let u, v = Graph.endpoints g 1 in
  Alcotest.(check (pair int int)) "endpoints" (1, 2) (u, v);
  Alcotest.(check int) "other endpoint" 2 (Graph.other_endpoint g 1 1);
  Alcotest.check_raises "other endpoint invalid"
    (Invalid_argument "Graph.other_endpoint: node not on edge") (fun () ->
      ignore (Graph.other_endpoint g 1 0));
  Alcotest.(check bool) "mem" true (Graph.mem_edge g 0 3);
  Alcotest.(check bool) "not mem" false (Graph.mem_edge g 0 2);
  Alcotest.(check (option int)) "find edge" (Some 3) (Graph.find_edge g 3 0);
  check_close "total length" 10. (Graph.total_length g);
  check_close "total energy" 30. (Graph.total_energy g)

let test_geometric () =
  let pts = [| Point.make 0. 0.; Point.make 3. 4. |] in
  let g = Graph.geometric pts [ (0, 1) ] in
  check_close "euclidean length" 5. (Graph.length g 0)

let test_degree_sum =
  qtest "sum of degrees = 2m" seed_gen (fun seed ->
      let g = random_graph seed in
      let sum = ref 0 in
      for v = 0 to Graph.n g - 1 do
        sum := !sum + Graph.degree g v
      done;
      !sum = 2 * Graph.num_edges g)

let test_neighbors_consistent =
  qtest "neighbors match edges" seed_gen (fun seed ->
      let g = random_graph seed in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        Graph.iter_neighbors g v (fun w id ->
            let a, b = Graph.endpoints g id in
            if not ((a = v && b = w) || (a = w && b = v)) then ok := false)
      done;
      !ok)

let test_union_subgraph =
  qtest "graphs are subgraphs of their union" QCheck2.Gen.(pair seed_gen seed_gen)
    (fun (s1, s2) ->
      let rng = Prng.create s1 in
      let n = 2 + Prng.int rng 15 in
      let mk seed =
        let rng = Prng.create seed in
        let b = Graph.Builder.create n in
        for _ = 1 to n do
          Graph.Builder.add_edge b (Prng.int rng n) (Prng.int rng n) 1.
        done;
        Graph.Builder.build b
      in
      let a = mk s1 and c = mk s2 in
      let u = Graph.union a c in
      Graph.is_subgraph a u && Graph.is_subgraph c u)

(* ------------------------------------------------------------------ *)
(* CSR storage vs naive reference                                      *)

(* Naive reference semantics for the builder: canonicalise u < v, drop
   self-loops, first insertion of a pair wins and fixes both the length
   and the edge id order. *)
let naive_edges edges =
  List.fold_left
    (fun acc (u, v, len) ->
      if u = v then acc
      else begin
        let u, v = if u < v then (u, v) else (v, u) in
        if List.exists (fun (a, b, _) -> a = u && b = v) acc then acc
        else (u, v, len) :: acc
      end)
    [] edges
  |> List.rev

let random_edge_list seed =
  let rng = Prng.create seed in
  let n = 1 + Prng.int rng 12 in
  let k = Prng.int rng (4 * n) in
  let edges =
    List.init k (fun _ -> (Prng.int rng n, Prng.int rng n, Prng.range rng 0.1 2.))
  in
  (n, edges)

let test_csr_matches_naive =
  qtest "CSR graph = naive reference" ~count:300 seed_gen (fun seed ->
      let n, edges = random_edge_list seed in
      let g = Graph.of_edges ~n edges in
      let reference = naive_edges edges in
      let m = List.length reference in
      Graph.num_edges g = m
      && List.for_all2
           (fun (u, v, len) id ->
             Graph.endpoints g id = (u, v)
             && Graph.edge_u g id = u
             && Graph.edge_v g id = v
             && Graph.length g id = len
             && (Graph.edge g id).Graph.u = u)
           reference
           (List.init m Fun.id)
      &&
      let ok = ref true in
      for u = 0 to n - 1 do
        let deg = List.length (List.filter (fun (a, b, _) -> a = u || b = u) reference) in
        if Graph.degree g u <> deg then ok := false;
        for v = 0 to n - 1 do
          let expect =
            List.find_opt (fun (a, b, _) -> (a = u && b = v) || (a = v && b = u)) reference
          in
          (match (Graph.find_edge g u v, expect) with
          | None, None -> ()
          | Some id, Some (a, b, _) -> if Graph.endpoints g id <> (a, b) then ok := false
          | _ -> ok := false);
          if Graph.mem_edge g u v <> Option.is_some expect then ok := false
        done
      done;
      !ok)

let test_csr_fold_matches_naive =
  qtest "fold_edges visits edges in id order" ~count:200 seed_gen (fun seed ->
      let n, edges = random_edge_list seed in
      let g = Graph.of_edges ~n edges in
      let folded =
        Graph.fold_edges g ~init:[] ~f:(fun acc id e -> (id, e.Graph.u, e.Graph.v, e.Graph.len) :: acc)
        |> List.rev
      in
      folded = List.mapi (fun id (u, v, len) -> (id, u, v, len)) (naive_edges edges))

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)

let test_cost_models () =
  check_close "hops" 1. (Cost.hops 7.);
  check_close "length" 7. (Cost.length 7.);
  check_close "energy k2" 49. (Cost.energy ~kappa:2. 7.);
  check_close "energy k4" 16. (Cost.energy ~kappa:4. 2.)

(* ------------------------------------------------------------------ *)
(* Dijkstra                                                            *)

let test_dijkstra_matches_floyd =
  qtest "dijkstra = floyd-warshall" ~count:150 seed_gen (fun seed ->
      let g = random_graph seed in
      let cost = if seed mod 2 = 0 then Cost.length else Cost.energy ~kappa:2. in
      let fw = Floyd_warshall.run g ~cost in
      let ok = ref true in
      for src = 0 to Graph.n g - 1 do
        let r = Dijkstra.run g ~cost ~src in
        for v = 0 to Graph.n g - 1 do
          if not (close ~eps:1e-9 fw.(src).(v) r.Dijkstra.dist.(v)) then ok := false
        done
      done;
      !ok)

let test_dijkstra_path_cost_consistent =
  qtest "path edges sum to dist" ~count:150 seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Prng.create (seed + 1) in
      let src = Prng.int rng (Graph.n g) and dst = Prng.int rng (Graph.n g) in
      let r = Dijkstra.run g ~cost:Cost.length ~src in
      match Dijkstra.path_edges r dst with
      | None -> r.Dijkstra.dist.(dst) = infinity
      | Some edges ->
          let total = List.fold_left (fun acc e -> acc +. Graph.length g e) 0. edges in
          close ~eps:1e-9 total r.Dijkstra.dist.(dst))

let test_dijkstra_path_nodes =
  qtest "path node sequence valid" ~count:100 seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Prng.create (seed + 2) in
      let src = Prng.int rng (Graph.n g) and dst = Prng.int rng (Graph.n g) in
      let r = Dijkstra.run g ~cost:Cost.length ~src in
      match Dijkstra.path r dst with
      | None -> true
      | Some [] -> false
      | Some (first :: _ as nodes) ->
          let rec consecutive = function
            | a :: (b :: _ as rest) -> Graph.mem_edge g a b && consecutive rest
            | _ -> true
          in
          first = src
          && List.nth nodes (List.length nodes - 1) = dst
          && consecutive nodes)

let test_dijkstra_line () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 4.) ] in
  let r = Dijkstra.run g ~cost:Cost.length ~src:0 in
  check_close "dist 3" 7. r.Dijkstra.dist.(3);
  check_close "distance fn" 7. (Dijkstra.distance g ~cost:Cost.length 0 3);
  let ap = Dijkstra.all_pairs g ~cost:Cost.length in
  check_close "all pairs" 6. ap.(1).(3)

let test_dijkstra_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1.); (2, 3, 1.) ] in
  let r = Dijkstra.run g ~cost:Cost.length ~src:0 in
  Alcotest.(check bool) "unreachable" true (r.Dijkstra.dist.(2) = infinity);
  Alcotest.(check bool) "no path" true (Dijkstra.path r 2 = None)

(* ------------------------------------------------------------------ *)
(* Bfs / Components                                                    *)

let test_bfs_hops () =
  let g = Graph.of_edges ~n:5 [ (0, 1, 5.); (1, 2, 5.); (2, 3, 5.); (0, 4, 1.) ] in
  let h = Bfs.hops g ~src:0 in
  Alcotest.(check (array int)) "hops" [| 0; 1; 2; 3; 1 |] h;
  Alcotest.(check int) "diameter" 4 (Bfs.diameter_hops g)

let test_bfs_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "unreachable marked" true ((Bfs.hops g ~src:0).(2) = max_int);
  Alcotest.(check bool) "reachable" true (Bfs.reachable g ~src:0).(1);
  Alcotest.(check int) "diameter infinite" max_int (Bfs.diameter_hops g)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1, 1.); (1, 2, 1.); (3, 4, 1.) ] in
  Alcotest.(check int) "count" 3 (Components.count g);
  Alcotest.(check bool) "not connected" false (Components.is_connected g);
  let labels = Components.labels g in
  Alcotest.(check (array int)) "labels" [| 0; 0; 0; 3; 3; 5 |] labels;
  let h = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  Alcotest.(check bool) "connected" true (Components.is_connected h);
  Alcotest.(check bool) "empty connected" true (Components.is_connected (Graph.of_edges ~n:0 []))

(* ------------------------------------------------------------------ *)
(* Mst                                                                 *)

let test_mst_known () =
  (* Square with a diagonal: MST must avoid the heavy diagonal. *)
  let g =
    Graph.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 0, 1.); (0, 2, 5.) ]
  in
  let t = Mst.of_graph g in
  Alcotest.(check int) "n-1 edges" 3 (Graph.num_edges t);
  check_close "weight" 3. (Graph.total_length t);
  Alcotest.(check bool) "spanning" true (Components.is_connected t)

let test_mst_of_points () =
  let pts = [| Point.make 0. 0.; Point.make 1. 0.; Point.make 2. 0.; Point.make 10. 0. |] in
  let t = Mst.of_points pts in
  Alcotest.(check int) "edges" 3 (Graph.num_edges t);
  check_close "weight" 10. (Graph.total_length t)

let test_mst_beats_random_spanning_tree =
  qtest "MST minimal vs random spanning tree" ~count:100 seed_gen (fun seed ->
      let g = random_graph seed in
      QCheck2.assume (Components.is_connected g && Graph.n g > 2);
      let mst = Mst.of_graph g in
      (* Random spanning tree: shuffle edges, add acyclically. *)
      let rng = Prng.create (seed * 7) in
      let edges = Array.init (Graph.num_edges g) Fun.id in
      Prng.shuffle rng edges;
      let uf = Adhoc_util.Union_find.create (Graph.n g) in
      let total = ref 0. in
      Array.iter
        (fun e ->
          let u, v = Graph.endpoints g e in
          if Adhoc_util.Union_find.union uf u v then total := !total +. Graph.length g e)
        edges;
      Graph.total_length mst <= !total +. 1e-9)

let test_mst_forest =
  qtest "MST is spanning forest" seed_gen (fun seed ->
      let g = random_graph seed in
      let t = Mst.of_graph g in
      Graph.num_edges t = Graph.n g - Components.count g
      && Components.count t = Components.count g)

(* ------------------------------------------------------------------ *)
(* Stretch                                                             *)

let geometric_pair seed =
  (* A geometric base graph and a sparse connected subgraph of it. *)
  let rng = Prng.create seed in
  let points = points_of_seed ~min_n:5 ~max_n:16 seed in
  let n = Array.length points in
  let base = Adhoc_graph.Mst.of_points points in
  (* Base: MST plus extra random geometric edges. *)
  let b = Graph.Builder.create n in
  ignore
    (Graph.fold_edges base ~init:() ~f:(fun () _ e ->
         Graph.Builder.add_edge b e.Graph.u e.Graph.v e.Graph.len));
  for _ = 1 to 2 * n do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then Graph.Builder.add_edge b u v (Point.dist points.(u) points.(v))
  done;
  let base = Graph.Builder.build b in
  (* Subgraph: MST plus a few of the extra edges. *)
  let s = Graph.Builder.create n in
  ignore
    (Graph.fold_edges base ~init:() ~f:(fun () id e ->
         if id < n - 1 || Prng.bool rng then
           Graph.Builder.add_edge s e.Graph.u e.Graph.v e.Graph.len));
  (points, Graph.Builder.build s, base)

let test_stretch_edge_reduction_exact =
  qtest "over_base_edges = exact all-pairs stretch" ~count:100 seed_gen (fun seed ->
      let _, sub, base = geometric_pair seed in
      List.for_all
        (fun cost ->
          close ~eps:1e-9
            (Stretch.exact_small ~sub ~base ~cost)
            (Stretch.over_base_edges ~sub ~base ~cost ()))
        [ Cost.length; Cost.energy ~kappa:2.; Cost.energy ~kappa:3. ])

let test_stretch_identity () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.); (0, 2, 1.5) ] in
  check_close "self stretch" 1. (Stretch.over_base_edges ~sub:g ~base:g ~cost:Cost.length ())

let test_stretch_disconnected_sub () =
  let base = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let sub = Graph.of_edges ~n:3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "infinite" true
    (Stretch.over_base_edges ~sub ~base ~cost:Cost.length () = infinity)

let test_stretch_vs_euclidean =
  qtest "euclidean stretch >= 1 and >= base stretch" ~count:50 seed_gen (fun seed ->
      let points, sub, base = geometric_pair seed in
      let vs_e = Stretch.vs_euclidean ~sub ~points () in
      let vs_b = Stretch.over_base_edges ~sub ~base ~cost:Cost.length () in
      vs_e >= 1. && vs_e >= vs_b -. 1e-9)

let test_stretch_profile () =
  let base = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.); (0, 2, 1.4) ] in
  let sub = Graph.of_edges ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let profile = Stretch.per_edge_profile ~sub ~base ~cost:Cost.length () in
  Alcotest.(check int) "profile size" 3 (Array.length profile);
  check_close "direct edges" 1. profile.(0);
  check_close "detour" (2. /. 1.4) profile.(2)


let test_run_to_matches_run =
  qtest "run_to agrees with run at the target" ~count:80 seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Prng.create (seed + 9) in
      let src = Prng.int rng (Graph.n g) and dst = Prng.int rng (Graph.n g) in
      let full = (Dijkstra.run g ~cost:Cost.length ~src).Dijkstra.dist.(dst) in
      let early = (Dijkstra.run_to g ~cost:Cost.length ~src ~dst).Dijkstra.dist.(dst) in
      close ~eps:1e-12 full early)

let test_union_commutative =
  qtest "union edge sets commute" ~count:60 QCheck2.Gen.(pair seed_gen seed_gen)
    (fun (s1, s2) ->
      let rng = Prng.create s1 in
      let n = 2 + Prng.int rng 12 in
      let mk seed =
        let rng = Prng.create seed in
        let b = Graph.Builder.create n in
        for _ = 1 to n do
          Graph.Builder.add_edge b (Prng.int rng n) (Prng.int rng n) 1.
        done;
        Graph.Builder.build b
      in
      let a = mk s1 and c = mk s2 in
      edge_set (Graph.union a c) = edge_set (Graph.union c a))

let () =
  Alcotest.run "graph"
    [
      ( "builder",
        [
          case "dedup" test_builder_dedup;
          case "bounds" test_builder_bounds;
          case "accessors" test_graph_accessors;
          case "geometric" test_geometric;
          test_degree_sum;
          test_neighbors_consistent;
          test_union_subgraph;
          test_union_commutative;
        ] );
      ("csr", [ test_csr_matches_naive; test_csr_fold_matches_naive ]);
      ("cost", [ case "models" test_cost_models ]);
      ( "dijkstra",
        [
          test_dijkstra_matches_floyd;
          test_dijkstra_path_cost_consistent;
          test_dijkstra_path_nodes;
          case "line" test_dijkstra_line;
          case "unreachable" test_dijkstra_unreachable;
          test_run_to_matches_run;
        ] );
      ( "bfs/components",
        [
          case "hops" test_bfs_hops;
          case "disconnected" test_bfs_disconnected;
          case "components" test_components;
        ] );
      ( "mst",
        [
          case "known" test_mst_known;
          case "of points" test_mst_of_points;
          test_mst_beats_random_spanning_tree;
          test_mst_forest;
        ] );
      ( "stretch",
        [
          test_stretch_edge_reduction_exact;
          case "identity" test_stretch_identity;
          case "disconnected" test_stretch_disconnected_sub;
          test_stretch_vs_euclidean;
          case "profile" test_stretch_profile;
        ] );
    ]
