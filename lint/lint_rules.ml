(* The rule set: a single Ast_iterator pass over one parsed compilation
   unit, emitting raw (pre-waiver) diagnostics.

   Rules and scopes (see DESIGN.md "Determinism policy"):

     ambient-rng    lib/   Random.* — ambient, unseeded global state
     wall-clock     lib/   Sys.time / Unix.gettimeofday / Unix.time / ...
     hashtbl-order  lib/   Hashtbl.iter / fold / to_seq* — unspecified order
     poly-compare   lib/   bare polymorphic compare (incl. Stdlib.compare)
     float-cmp      all    polymorphic = / <> / compare on float operands
     float-minmax   all    polymorphic min / max on float operands
     obs-purity     lib/   print_* / prerr_* / Printf.printf / Format.printf,
                           plus output-channel writes (open_out*, output_*,
                           Printf.fprintf) outside lib/obs/ — the obs layer
                           is the sanctioned serialisation path
     mli-required   lib/   .ml without a matching .mli (checked by the driver)
     catch-all      all    "with _ ->" swallowing every exception
     raw-domain     all    Domain.* anywhere but lib/util/pool.ml (the driver
                           exempts the pool module itself)
     raw-gc         all    Gc.* anywhere but lib/obs/ (the driver exempts the
                           obs layer, whose Gcstat is the sanctioned window)
     waiver-hygiene meta   unknown rule / missing reason / unused waiver
     parse-error    meta   the file does not parse

   Float operands are recognised syntactically: a float literal, a unary or
   binary float operator (+. etc.), a well-known float-returning stdlib
   function (sqrt, float_of_int, ...), or anything reached through a flagged
   module (Float, Stats, Cost) — the modules whose values have twice been
   mis-compared polymorphically in this repo's history. *)

open Parsetree

type scope = Lib | Tool

(* Which analysis layer detects a rule: the fast Parsetree pass, the
   resolved Typedtree/cmt pass, both (syntactic matches are caught twice
   and deduplicated; alias evasions only by the cmt pass), or the meta
   machinery around them. *)
type layer = L_parsetree | L_cmt | L_both | L_meta

let layer_name = function
  | L_parsetree -> "parsetree"
  | L_cmt -> "cmt"
  | L_both -> "both"
  | L_meta -> "meta"

type rule = { id : string; r_scope : scope option; r_layer : layer; doc : string }

let rules =
  [
    { id = "ambient-rng"; r_scope = Some Lib; r_layer = L_both; doc = "ambient Random.* in library code" };
    { id = "wall-clock"; r_scope = Some Lib; r_layer = L_both; doc = "wall-clock reads in library code" };
    { id = "hashtbl-order"; r_scope = Some Lib; r_layer = L_both; doc = "order-sensitive Hashtbl traversal" };
    { id = "poly-compare"; r_scope = Some Lib; r_layer = L_parsetree; doc = "bare polymorphic compare in library code" };
    { id = "float-cmp"; r_scope = None; r_layer = L_parsetree; doc = "polymorphic comparison on floats" };
    { id = "float-minmax"; r_scope = None; r_layer = L_parsetree; doc = "polymorphic min/max on floats" };
    { id = "obs-purity"; r_scope = Some Lib; r_layer = L_both; doc = "console or file-channel output in library code" };
    { id = "mli-required"; r_scope = Some Lib; r_layer = L_parsetree; doc = "library module without an .mli" };
    { id = "catch-all"; r_scope = None; r_layer = L_parsetree; doc = "try ... with _ -> swallows all exceptions" };
    { id = "raw-domain"; r_scope = None; r_layer = L_both; doc = "raw Domain.* outside the pool module" };
    { id = "raw-gc"; r_scope = None; r_layer = L_both; doc = "raw Gc.* outside the obs layer" };
    { id = "par-safety"; r_scope = Some Lib; r_layer = L_cmt; doc = "shared-state write or io in a Pool region body" };
    { id = "waiver-hygiene"; r_scope = None; r_layer = L_meta; doc = "malformed, unknown or unused waiver" };
    { id = "parse-error"; r_scope = None; r_layer = L_meta; doc = "file does not parse" };
  ]

let known_rule id = List.exists (fun r -> r.id = id) rules

(* ------------------------------------------------------------------ *)
(* Path policy, shared by the driver (Parsetree layer) and the cmt
   layer: which files count as library code and which are the sanctioned
   exemptions. *)

let scope_of_path path =
  let segs = String.split_on_char '/' path in
  if List.mem "lib" segs then Lib else Tool

(* The one compilation unit allowed to touch Domain.* (see raw-domain):
   the domain pool that every kernel threads instead. *)
let domain_exempt_path path =
  let norm = String.concat "/" (String.split_on_char '\\' path) in
  let suffix = "lib/util/pool.ml" in
  let n = String.length norm and k = String.length suffix in
  n >= k && String.sub norm (n - k) k = suffix

(* The observability layer is allowed to read Gc.* (see raw-gc) and to
   write output channels (see obs-purity): its Gcstat module is the
   sanctioned GC window, and its writers (Event, Trace, Live,
   Chrome_trace) the sanctioned file-serialisation path. *)
let obs_layer_path path =
  let norm = String.concat "/" (String.split_on_char '\\' path) in
  let infix = "lib/obs/" in
  let n = String.length norm and k = String.length infix in
  let rec scan i = i + k <= n && (String.sub norm i k = infix || scan (i + 1)) in
  scan 0

type ctx = {
  scope : scope;
  float_flagged : bool;  (* file belongs to a float-heavy flagged module *)
  domain_exempt : bool;  (* the sanctioned Domain wrapper (lib/util/pool.ml) *)
  gc_exempt : bool;  (* the sanctioned Gc window (anything under lib/obs/) *)
  obs_exempt : bool;  (* the sanctioned channel writers (anything under lib/obs/) *)
  emit : Location.t -> string -> string -> unit;  (* loc, rule, message *)
}

(* ------------------------------------------------------------------ *)
(* Longident helpers.                                                  *)

let flatten lid = try Longident.flatten lid with _ -> []  (* lint: allow catch-all — Longident.flatten only raises on Lapply, which cannot carry banned idents *)

(* Normalise an identifier path: explicit Stdlib qualification is the same
   identifier. *)
let norm = function "Stdlib" :: rest -> rest | p -> p

let ident_path e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (norm (flatten txt)) | _ -> None

let float_modules = [ "Float"; "Stats"; "Cost" ]

let float_fns =
  [
    "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "cos"; "sin"; "tan"; "acos"; "asin";
    "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float"; "mod_float";
    "float_of_int"; "float_of_string"; "float";
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let path_in_float_module p =
  (* Any module segment of the path names a flagged module: Float.pi,
     Stats.mean, Adhoc_util.Stats.mean, Adhoc_graph.Cost.energy, ... *)
  match List.rev p with
  | [] | [ _ ] -> false
  | _ :: modules -> List.exists (fun m -> List.mem m float_modules) modules

let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> path_in_float_module (norm (flatten txt))
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ op ] when List.mem op float_ops -> true
      | Some [ fn ] when List.mem fn float_fns -> true
      | Some p when path_in_float_module p -> true
      | Some [ op ] when List.mem op [ "+"; "-"; "*"; "/" ] ->
          (* Parenthesised sub-expressions stay transparent. *)
          List.exists (fun (_, a) -> floatish a) args
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Identifier ban tables.                                              *)

let hashtbl_order_fns = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let wall_clock =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
  ]

let print_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes";
  ]

let printf_like =
  [ [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ]; [ "Format"; "printf" ]; [ "Format"; "eprintf" ] ]

(* Output-channel writes: allowed only under lib/obs/ (ctx.obs_exempt),
   where Event / Trace / Live / Chrome_trace own all file serialisation.
   [close_out] stays legal everywhere — closing a channel someone handed
   you is not producing output. *)
let channel_idents =
  [
    "open_out"; "open_out_bin"; "open_out_gen"; "output_string"; "output_char"; "output_bytes";
    "output_byte"; "output_substring";
  ]

let check_ident ctx loc p =
  (match p with
  | "Domain" :: _ when not ctx.domain_exempt ->
      ctx.emit loc "raw-domain"
        "raw Domain.* outside Adhoc_util.Pool; thread a Pool.t through the kernel instead"
  | _ -> ());
  (match p with
  | "Gc" :: _ when not ctx.gc_exempt ->
      ctx.emit loc "raw-gc"
        "raw Gc.* outside Adhoc_obs; read GC telemetry through Adhoc_obs.Gcstat"
  | _ -> ());
  if ctx.scope = Lib then begin
    (match p with
    | [ "compare" ] ->
        (* Catches both the applied form (compare a b, List.sort compare)
           and compare smuggled into a functor (let compare = compare);
           Stdlib qualification is normalised away.  Monomorphic
           comparators (Int.compare, ...) have a module path and pass. *)
        ctx.emit loc "poly-compare"
          "bare polymorphic compare in library code; use a monomorphic comparator (Int.compare, Float.compare, ...)"
    | _ -> ());
    (match p with
    | "Random" :: _ ->
        ctx.emit loc "ambient-rng"
          "ambient PRNG in library code; thread an explicit Adhoc_util.Prng.t instead"
    | _ -> ());
    if List.mem p wall_clock then
      ctx.emit loc "wall-clock"
        (Printf.sprintf "wall-clock read %s in library code breaks reproducibility; take time as input or go through Adhoc_obs.Span"
           (String.concat "." p));
    (match p with
    | [ "Hashtbl"; fn ] when List.mem fn hashtbl_order_fns ->
        ctx.emit loc "hashtbl-order"
          (Printf.sprintf
             "Hashtbl.%s traverses in unspecified order; iterate sorted keys (Adhoc_util.Det) or justify order-independence in a waiver"
             fn)
    | _ -> ());
    (match p with
    | [ id ] when List.mem id print_idents ->
        ctx.emit loc "obs-purity"
          (Printf.sprintf "%s in library code; return data or emit through an Adhoc_obs sink" id)
    | _ ->
        if List.mem p printf_like then
          ctx.emit loc "obs-purity"
            (Printf.sprintf "%s in library code; return data or emit through an Adhoc_obs sink"
               (String.concat "." p)));
    if not ctx.obs_exempt then
      match p with
      | [ id ] when List.mem id channel_idents ->
          ctx.emit loc "obs-purity"
            (Printf.sprintf
               "%s in library code; confine file serialisation to the obs layer (lib/obs/)" id)
      | [ "Printf"; "fprintf" ] ->
          ctx.emit loc "obs-purity"
            "Printf.fprintf in library code; confine file serialisation to the obs layer (lib/obs/)"
      | _ -> ()
  end

let cmp_name p = match p with [ n ] -> Some n | _ -> None

let check_apply ctx loc f args =
  (match ident_path f with
  | Some p -> (
      match cmp_name p with
      | Some (("=" | "<>" | "compare") as op) when List.length args = 2 ->
          if List.exists (fun (_, a) -> floatish a) args then
            ctx.emit loc "float-cmp"
              (Printf.sprintf
                 "polymorphic %s on a float operand; use Float.%s (nan-aware, monomorphic)" op
                 (if op = "compare" then "compare" else "equal"))
      | Some (("min" | "max") as op) when List.length args = 2 ->
          if List.exists (fun (_, a) -> floatish a) args then
            ctx.emit loc "float-minmax"
              (Printf.sprintf "polymorphic %s on a float operand; use Float.%s" op op)
      | _ -> ())
  | None -> ());
  (* Bare polymorphic compare passed as a value (Array.sort compare ...)
     inside a float-flagged module: the exact bug class fixed twice in
     Stats.  Elsewhere the element type is usually not float. *)
  if ctx.float_flagged then
    List.iter
      (fun (_, a) ->
        match ident_path a with
        | Some [ "compare" ] ->
            ctx.emit a.pexp_loc "float-cmp"
              "bare polymorphic compare in a float-flagged module; use Float.compare"
        | _ -> ())
      args

let check_try ctx cases =
  List.iter
    (fun c ->
      match (c.pc_lhs.ppat_desc, c.pc_guard) with
      | Ppat_any, None ->
          ctx.emit c.pc_lhs.ppat_loc "catch-all"
            "catch-all handler swallows every exception (including Out_of_memory and asserts); match the exceptions you mean"
      | _ -> ())
    cases

let iterator ctx =
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ctx loc (norm (flatten txt))
    | Pexp_apply (f, args) -> check_apply ctx e.pexp_loc f args
    | Pexp_try (_, cases) -> check_try ctx cases
    | _ -> ());
    default_iterator.expr it e
  in
  { default_iterator with expr }

(* ------------------------------------------------------------------ *)

let run_structure ctx str =
  let it = iterator ctx in
  it.Ast_iterator.structure it str

let run_signature ctx sg =
  let it = iterator ctx in
  it.Ast_iterator.signature it sg
