(* adhoc_lint — static analysis over the simulator's sources.

     adhoc_lint [--json FILE] [--sarif FILE] [--warn RULE]... [--no-cmt] [ROOT...]

   Two layers (see DESIGN.md "Static analysis architecture"): a Parsetree
   pass parses every .ml/.mli under the given roots (default: lib bench
   bin test lint) and enforces the determinism, float-safety and
   obs-purity invariants syntactically; a Typedtree pass reads the .cmt
   artifacts of the lib-scoped roots and re-checks the bans against
   resolved paths — closing module-alias, open and functor evasions — and
   runs the call-graph effect inference behind the par-safety rule.

   Exits non-zero when any unwaived error-severity diagnostic remains.
   --warn demotes a rule to warning severity (reported, does not fail the
   build); --json writes an adhoc-lint/2 report; --sarif writes a SARIF
   2.1.0 log for code-scanning upload; --no-cmt skips the Typedtree
   layer. *)

open Adhoc_lint_engine

let usage () =
  prerr_endline
    "usage: adhoc_lint [--json FILE] [--sarif FILE] [--warn RULE] [--no-cmt] [--list-rules] [ROOT...]\n\
     default roots: lib bench bin test lint";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint_rules.rule) ->
      let scope =
        match r.r_scope with Some Lint_rules.Lib -> "lib/ " | _ -> "all  "
      in
      Printf.printf "%-15s %s %-9s %s\n" r.id scope (Lint_rules.layer_name r.r_layer) r.doc)
    Lint_rules.rules;
  exit 0

let () =
  let json = ref None and sarif = ref None and demote = ref [] and roots = ref [] in
  let cmt = ref true in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json := Some file;
        parse_args rest
    | "--sarif" :: file :: rest ->
        sarif := Some file;
        parse_args rest
    | "--warn" :: rule :: rest ->
        if not (Lint_rules.known_rule rule) then begin
          Printf.eprintf "adhoc_lint: unknown rule %S (see --list-rules)\n" rule;
          exit 2
        end;
        demote := rule :: !demote;
        parse_args rest
    | "--no-cmt" :: rest ->
        cmt := false;
        parse_args rest
    | "--list-rules" :: _ -> list_rules ()
    | ("--json" | "--sarif" | "--warn") :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bench"; "bin"; "test"; "lint" ] | rs -> rs
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "adhoc_lint: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let report = Lint_driver.run ~demote:!demote ~cmt:!cmt roots in
  List.iter (fun d -> print_endline (Lint_diag.to_string d)) report.Lint_diag.diags;
  let write file contents =
    let oc = open_out file in
    output_string oc contents;
    close_out oc
  in
  Option.iter (fun file -> write file (Lint_diag.to_json report)) !json;
  Option.iter
    (fun file ->
      let rule_docs = List.map (fun (r : Lint_rules.rule) -> (r.id, r.doc)) Lint_rules.rules in
      write file (Lint_diag.to_sarif ~rule_docs report))
    !sarif;
  let errors = Lint_diag.errors report and warnings = Lint_diag.warnings report in
  Printf.printf "adhoc_lint: %d files, %d cmt units, %d errors, %d warnings, %d waivers\n"
    report.Lint_diag.files report.Lint_diag.cmt_units errors warnings
    (List.length report.Lint_diag.used_waivers);
  if errors > 0 then exit 1
