(* adhoc_lint — static analysis over the simulator's sources.

     adhoc_lint [--json FILE] [--warn RULE]... [ROOT...]

   Parses every .ml/.mli under the given roots (default: lib bench bin
   test lint) with compiler-libs and enforces the determinism, float-safety
   and obs-purity invariants documented in DESIGN.md.  Exits non-zero when
   any unwaived error-severity diagnostic remains.  --warn demotes a rule
   to warning severity (reported, does not fail the build); --json also
   writes an adhoc-lint/1 report. *)

open Adhoc_lint_engine

let usage () =
  prerr_endline
    "usage: adhoc_lint [--json FILE] [--warn RULE] [--list-rules] [ROOT...]\n\
     default roots: lib bench bin test lint";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint_rules.rule) ->
      let scope =
        match r.r_scope with Some Lint_rules.Lib -> "lib/ " | _ -> "all  "
      in
      Printf.printf "%-15s %s %s\n" r.id scope r.doc)
    Lint_rules.rules;
  exit 0

let () =
  let json = ref None and demote = ref [] and roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json := Some file;
        parse_args rest
    | "--warn" :: rule :: rest ->
        if not (Lint_rules.known_rule rule) then begin
          Printf.eprintf "adhoc_lint: unknown rule %S (see --list-rules)\n" rule;
          exit 2
        end;
        demote := rule :: !demote;
        parse_args rest
    | "--list-rules" :: _ -> list_rules ()
    | ("--json" | "--warn") :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bench"; "bin"; "test"; "lint" ] | rs -> rs
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "adhoc_lint: no such file or directory: %s\n" r;
        exit 2
      end)
    roots;
  let report = Lint_driver.run ~demote:!demote roots in
  List.iter (fun d -> print_endline (Lint_diag.to_string d)) report.Lint_diag.diags;
  (match !json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Lint_diag.to_json report);
      close_out oc);
  let errors = Lint_diag.errors report and warnings = Lint_diag.warnings report in
  Printf.printf "adhoc_lint: %d files, %d errors, %d warnings, %d waivers\n"
    report.Lint_diag.files errors warnings
    (List.length report.Lint_diag.used_waivers);
  if errors > 0 then exit 1
