(* Per-compilation-unit call graph with transitive effect inference.

   [build] takes the loaded typedtrees of a library (unit name +
   structure), records every let-bound definition (for on-demand local
   analysis by the par-safety pass), computes a direct effect summary for
   every module-level binding with Lint_effects.analyze, then propagates
   effects over the call edges to a fixpoint.  Call edges are
   references-as-calls: any occurrence of a known binding's identifier
   counts as a dependency, which over-approximates (storing a function in
   a record creates an edge) but never misses a call.

   Same-unit references resolve by ident stamp (so shadowed or nested
   helpers never alias a module-level binding); cross-unit references
   resolve by (defining unit, name) from the typedtree uid, which is what
   closes the module-alias and [open]/[include] holes.  Values without a
   summary — stdlib non-axioms, units without a cmt on the scan path —
   are assumed pure. *)

open Typedtree

type entry = {
  e_key : Lint_effects.key;
  mutable e_raw : Lint_effects.effects;  (* direct effects of the binding body *)
  mutable e_deps : Lint_effects.key list;  (* resolved call edges, deduped *)
  mutable e_sum : Lint_effects.effects;  (* post-fixpoint summary *)
}

type t = {
  entries : (string * string, entry) Hashtbl.t;  (* (ku, kn) -> entry *)
  locals : (string * string, expression) Hashtbl.t;  (* (raw unit, unique name) -> def *)
  top_by_uname : (string * string, Lint_effects.key) Hashtbl.t;
}

let local_def t ~unit ~uname = Hashtbl.find_opt t.locals (unit, uname)
let top_key t ~unit ~uname = Hashtbl.find_opt t.top_by_uname (unit, uname)

let summary t (k : Lint_effects.key) =
  match Hashtbl.find_opt t.entries (k.ku, k.kn) with Some e -> Some e.e_sum | None -> None

(* ------------------------------------------------------------------ *)

let pat_idents p =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) sub (q : k general_pattern) ->
          (match q.pat_desc with
          | Tpat_var (id, _) -> acc := id :: !acc
          | Tpat_alias (_, id, _) -> acc := id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.pat sub q);
    }
  in
  it.pat it p;
  !acc

(* Record every let-bound definition in the structure, nested ones
   included: the value-binding hook fires for bindings at any depth. *)
let record_locals t unit_raw str =
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          (match pat_idents vb.vb_pat with
          | [ id ] -> Hashtbl.replace t.locals (unit_raw, Ident.unique_name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it str

(* Module-level bindings: structure items of the unit and of any nested
   [module M = struct ... end], keyed by (unit, name).  Nested modules can
   shadow a top-level name; colliding entries are joined conservatively. *)
let rec module_bindings acc item =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      List.fold_left
        (fun acc vb -> match pat_idents vb.vb_pat with [ id ] -> (id, vb.vb_expr) :: acc | _ -> acc)
        acc vbs
  | Tstr_module mb -> module_expr_bindings acc mb.mb_expr
  | Tstr_include _ -> acc
  | _ -> acc

and module_expr_bindings acc me =
  match me.mod_desc with
  | Tmod_structure s -> List.fold_left module_bindings acc s.str_items
  | Tmod_constraint (me', _, _, _) -> module_expr_bindings acc me'
  | _ -> acc

let build units =
  let t = { entries = Hashtbl.create 256; locals = Hashtbl.create 1024; top_by_uname = Hashtbl.create 256 } in
  (* Pass 1: record local defs and register module-level binding keys, so
     same-unit references resolve no matter the definition order. *)
  let tops =
    List.map
      (fun (unit_raw, str) ->
        record_locals t unit_raw str;
        let bindings = List.fold_left module_bindings [] str.str_items in
        let ku = Lint_effects.normalize_unit unit_raw in
        List.iter
          (fun (id, _) ->
            let key = { Lint_effects.ku; kn = Ident.name id } in
            Hashtbl.replace t.top_by_uname (unit_raw, Ident.unique_name id) key;
            if not (Hashtbl.mem t.entries (key.ku, key.kn)) then
              Hashtbl.replace t.entries (key.ku, key.kn)
                { e_key = key; e_raw = Lint_effects.pure; e_deps = []; e_sum = Lint_effects.pure })
          bindings;
        (unit_raw, bindings))
      units
  in
  (* Pass 2: direct effects and call edges per binding. *)
  List.iter
    (fun (unit_raw, bindings) ->
      List.iter
        (fun (id, def) ->
          let key = Hashtbl.find t.top_by_uname (unit_raw, Ident.unique_name id) in
          let deps = ref [] in
          let add_dep k = if not (List.mem k !deps) then deps := k :: !deps in
          let on_event _loc = function
            | Lint_effects.Ev_call (Lint_effects.Dep_global k) ->
                if Hashtbl.mem t.entries (k.Lint_effects.ku, k.Lint_effects.kn) then add_dep k
            | Lint_effects.Ev_call (Lint_effects.Dep_local { uname; _ }) -> (
                (* a reference to another module-level binding of this unit;
                   inner locals are analyzed in-tree and need no edge *)
                match top_key t ~unit:unit_raw ~uname with Some k -> add_dep k | None -> ())
            | _ -> ()
          in
          let raw = Lint_effects.analyze ~unit_name:unit_raw ~on_event def in
          let e = Hashtbl.find t.entries (key.Lint_effects.ku, key.Lint_effects.kn) in
          e.e_raw <- Lint_effects.join e.e_raw raw;
          List.iter (fun k -> if not (List.mem k e.e_deps) then e.e_deps <- k :: e.e_deps) !deps)
        bindings)
    tops;
  (* Pass 3: fixpoint over call edges. *)
  Hashtbl.iter (fun _ e -> e.e_sum <- e.e_raw) t.entries;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ e ->
        let s =
          List.fold_left
            (fun acc k ->
              match Hashtbl.find_opt t.entries (k.Lint_effects.ku, k.Lint_effects.kn) with
              | Some d -> Lint_effects.join acc (Lint_effects.propagated d.e_sum)
              | None -> acc)
            e.e_sum e.e_deps
        in
        if not (Lint_effects.equal s e.e_sum) then begin
          e.e_sum <- s;
          changed := true
        end)
      t.entries
  done;
  t

(* Deterministic rendering of the summaries of units matching [unit_filter]
   (normalized unit names), for golden tests: one "Unit.name: effects"
   line per binding, sorted. *)
let render_summaries t ~unit_filter =
  Hashtbl.fold
    (fun (ku, kn) e acc ->
      if unit_filter ku then Printf.sprintf "%s.%s: %s" ku kn (Lint_effects.to_string e.e_sum) :: acc
      else acc)
    t.entries []
  |> List.sort String.compare
