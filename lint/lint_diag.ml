(* Diagnostic types, waiver parsing and report rendering for adhoc_lint.

   A waiver is a single-line comment — opener, marker and rule on one
   line — whose body reads

     lint: allow <rule> — <reason>

   ("--", "-" or ":" are accepted in place of the em-dash).  It suppresses
   diagnostics of that rule on its own line and on the following line, so it
   can sit at the end of the offending line or alone just above it.  The
   reason is mandatory: a waiver without one is itself a diagnostic
   (waiver-hygiene), as is a waiver that suppresses nothing — waivers must
   not outlive the code they excuse. *)

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

(* Which analysis layer produced a diagnostic.  The same ban can fire in
   both layers at the same position (a syntactic [Random.int] is also a
   resolved one); [dedup] keeps the Parsetree copy. *)
type layer = Parsetree | Cmt

let diag_layer_name = function Parsetree -> "parsetree" | Cmt -> "cmt"

type diag = {
  file : string;
  line : int;
  col : int;
  rule : string;
  layer : layer;
  severity : severity;
  message : string;
}

type waiver = {
  w_file : string;
  w_line : int;
  w_rule : string;
  w_reason : string;  (* "" when the comment carries no reason *)
  mutable w_used : bool;
}

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else begin
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else begin
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
    end
  end

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.message

(* Sort and collapse same-position same-rule findings from the two layers
   into one diagnostic, preferring the Parsetree copy (its message names
   what the programmer wrote; the resolved message explains an alias). *)
let dedup diags =
  let pref a b =
    match (a.layer, b.layer) with Parsetree, Cmt -> a | Cmt, Parsetree -> b | _ -> a
  in
  let sorted = List.stable_sort compare_diag diags in
  let rec go = function
    | a :: b :: rest when compare_diag a b = 0 -> go (pref a b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

(* ------------------------------------------------------------------ *)
(* Waiver scanning (raw text; the compiler's parser drops comments).  *)

let find_sub s sub from =
  let n = String.length s and k = String.length sub in
  let rec go i = if i + k > n then None else if String.sub s i k = sub then Some i else go (i + 1) in
  if k = 0 then None else go from

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let strip s =
  let n = String.length s in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ws s.[!i] do incr i done;
  while !j >= !i && is_ws s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

(* Parse one waiver body starting right after the allow marker.
   Returns (rule, reason). *)
let parse_waiver_tail tail =
  let n = String.length tail in
  let i = ref 0 in
  while !i < n && tail.[!i] = ' ' do incr i done;
  let r0 = !i in
  while !i < n && is_rule_char tail.[!i] do incr i done;
  let rule = String.sub tail r0 (!i - r0) in
  (* Optional separator, then the reason runs to the comment close. *)
  let rest = String.sub tail !i (n - !i) in
  let rest = match find_sub rest "*)" 0 with Some k -> String.sub rest 0 k | None -> rest in
  let rest = strip rest in
  let reason =
    if rest = "" then ""
    else begin
      let drop k = strip (String.sub rest k (String.length rest - k)) in
      if String.length rest >= 3 && String.sub rest 0 3 = "\xe2\x80\x94" then drop 3
      else if String.length rest >= 2 && String.sub rest 0 2 = "--" then drop 2
      else if rest.[0] = '-' || rest.[0] = ':' then drop 1
      else rest
    end
  in
  (rule, reason)

let scan_waivers ~file source =
  let lines = String.split_on_char '\n' source in
  let out = ref [] in
  List.iteri
    (fun i line ->
      match find_sub line "lint: allow" 0 with
      | None -> ()
      | Some at -> (
          (* Only a comment that opens on this line counts: prose or string
             literals merely mentioning the marker are not waivers. *)
          match find_sub line "(*" 0 with
          | Some op when op < at ->
              let tail = String.sub line (at + 11) (String.length line - at - 11) in
              let rule, reason = parse_waiver_tail tail in
              out :=
                { w_file = file; w_line = i + 1; w_rule = rule; w_reason = reason; w_used = false }
                :: !out
          | _ -> ()))
    lines;
  List.rev !out

(* A waiver covers its own line and the next one. *)
let covers w (d : diag) = w.w_rule = d.rule && (d.line = w.w_line || d.line = w.w_line + 1)

let apply_waivers waivers diags =
  List.filter
    (fun d ->
      match List.find_opt (fun w -> covers w d) waivers with
      | Some w ->
          w.w_used <- true;
          false
      | None -> true)
    diags

(* ------------------------------------------------------------------ *)
(* JSON rendering (no JSON library in the toolchain; see json_check). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Per-rule summary line: id, effective severity, detection layer (as a
   string, so this module stays independent of Lint_rules), unwaived
   finding count and used-waiver count. *)
type rule_count = { rc_id : string; rc_severity : severity; rc_layer : string; rc_count : int; rc_waived : int }

type report = {
  files : int;
  cmt_units : int;  (* compilation units the cmt layer analyzed *)
  diags : diag list;  (* unwaived, sorted *)
  used_waivers : waiver list;
  rule_counts : rule_count list;  (* every registered rule *)
}

let errors r = List.length (List.filter (fun d -> d.severity = Error) r.diags)
let warnings r = List.length (List.filter (fun d -> d.severity = Warning) r.diags)

let to_json r =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"schema\": \"adhoc-lint/2\",\n";
  add (Printf.sprintf "  \"files\": %d,\n" r.files);
  add (Printf.sprintf "  \"cmt_units\": %d,\n" r.cmt_units);
  add (Printf.sprintf "  \"errors\": %d,\n" (errors r));
  add (Printf.sprintf "  \"warnings\": %d,\n" (warnings r));
  add "  \"rules\": [";
  List.iteri
    (fun i rc ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n    {\"id\": \"%s\", \"severity\": \"%s\", \"layer\": \"%s\", \"count\": %d, \"waived\": %d}"
           (json_escape rc.rc_id) (severity_name rc.rc_severity) (json_escape rc.rc_layer) rc.rc_count
           rc.rc_waived))
    r.rule_counts;
  add "\n  ],\n";
  add "  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
            \"layer\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\"}"
           (json_escape d.file) d.line d.col (json_escape d.rule) (diag_layer_name d.layer)
           (severity_name d.severity) (json_escape d.message)))
    r.diags;
  add "\n  ],\n";
  add "  \"waivers\": [";
  List.iteri
    (fun i w ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"reason\": \"%s\"}"
           (json_escape w.w_file) w.w_line (json_escape w.w_rule) (json_escape w.w_reason)))
    r.used_waivers;
  add "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 export, for GitHub code-scanning upload.  Minimal but
   valid: one run, the registered rules as reportingDescriptors, one
   result per diagnostic.  SARIF columns are 1-based. *)

let to_sarif ~rule_docs r =
  let buf = Buffer.create 8192 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n    {\n";
  add "      \"tool\": {\n        \"driver\": {\n";
  add "          \"name\": \"adhoc_lint\",\n";
  add "          \"informationUri\": \"https://example.invalid/adhoc_lint\",\n";
  add "          \"rules\": [";
  List.iteri
    (fun i (id, doc) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "\n            {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}"
           (json_escape id) (json_escape doc)))
    rule_docs;
  add "\n          ]\n        }\n      },\n";
  add "      \"results\": [";
  List.iteri
    (fun i d ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n        {\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \"%s\"}, \
            \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, \
            \"region\": {\"startLine\": %d, \"startColumn\": %d}}}]}"
           (json_escape d.rule)
           (match d.severity with Error -> "error" | Warning -> "warning")
           (json_escape d.message) (json_escape d.file) d.line (d.col + 1)))
    r.diags;
  add "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents buf
