(* Orchestration: walk the requested roots, parse each .ml/.mli with
   compiler-libs, run the rule pass, apply waivers, and assemble a report.

   The walk skips _build, .git and any directory named lint_fixtures (the
   test corpus contains deliberately bad sources).  Files are processed in
   sorted path order so output and report are stable across filesystems. *)

let skip_dirs = [ "_build"; ".git"; ".hg"; "lint_fixtures" ]

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then path :: acc
  else acc

let collect roots = List.fold_left walk [] roots |> List.sort String.compare

let scope_of_path path =
  let segs = String.split_on_char '/' path in
  if List.mem "lib" segs then Lint_rules.Lib else Lint_rules.Tool

(* Files whose dominant value type is float: bare polymorphic compare is
   banned outright there (see float-cmp). *)
let float_flagged_files = [ "stats.ml"; "cost.ml" ]

(* The one compilation unit allowed to touch Domain.* (see raw-domain):
   the domain pool that every kernel threads instead. *)
let domain_exempt_path path =
  let norm = String.concat "/" (String.split_on_char '\\' path) in
  let suffix = "lib/util/pool.ml" in
  let n = String.length norm and k = String.length suffix in
  n >= k && String.sub norm (n - k) k = suffix

(* The observability layer is allowed to read Gc.* (see raw-gc) and to
   write output channels (see obs-purity): its Gcstat module is the
   sanctioned GC window, and its writers (Event, Trace, Live,
   Chrome_trace) the sanctioned file-serialisation path.  Other library
   writers must waive the rule with a reason. *)
let obs_layer_path path =
  let norm = String.concat "/" (String.split_on_char '\\' path) in
  let infix = "lib/obs/" in
  let n = String.length norm and k = String.length infix in
  let rec scan i = i + k <= n && (String.sub norm i k = infix || scan (i + 1)) in
  scan 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

type outcome = {
  diags : Lint_diag.diag list;  (* post-waiver, unsorted *)
  used_waivers : Lint_diag.waiver list;
}

(* Check one compilation unit given its source text.  [scope] and [has_mli]
   are injected so the test suite can lint fixture files as if they lived
   under lib/. *)
let check_source ?(scope = Lint_rules.Tool) ?(has_mli = true) ?(domain_exempt = false)
    ?(gc_exempt = false) ?(obs_exempt = false) ~file source =
  let raw = ref [] in
  let emit loc rule message =
    let p = loc.Location.loc_start in
    raw :=
      {
        Lint_diag.file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        severity = Lint_diag.Error;
        message;
      }
      :: !raw
  in
  let ctx =
    {
      Lint_rules.scope;
      float_flagged = List.mem (Filename.basename file) float_flagged_files;
      domain_exempt;
      gc_exempt;
      obs_exempt;
      emit;
    }
  in
  let emit_at ~line ~col rule message =
    raw := { Lint_diag.file; line; col; rule; severity = Lint_diag.Error; message } :: !raw
  in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  (if Filename.check_suffix file ".mli" then
     match Parse.interface lexbuf with
     | sg -> Lint_rules.run_signature ctx sg
     | exception Syntaxerr.Error err ->
         let p = (Syntaxerr.location_of_error err).Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "syntax error"
     | exception Lexer.Error (_, loc) ->
         let p = loc.Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "lexical error"
   else
     match Parse.implementation lexbuf with
     | str ->
         Lint_rules.run_structure ctx str;
         if scope = Lint_rules.Lib && not has_mli then
           emit_at ~line:1 ~col:0 "mli-required"
             "library module has no .mli interface; its whole surface is public API"
     | exception Syntaxerr.Error err ->
         let p = (Syntaxerr.location_of_error err).Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "syntax error"
     | exception Lexer.Error (_, loc) ->
         let p = loc.Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "lexical error");
  (* Waivers: suppress matching diagnostics, then audit the waivers
     themselves.  A malformed or unused waiver is never silently ignored. *)
  let waivers = Lint_diag.scan_waivers ~file source in
  let kept = Lint_diag.apply_waivers waivers (List.rev !raw) in
  let hygiene =
    List.concat_map
      (fun w ->
        let bad fmt = Printf.ksprintf (fun m -> [ (w.Lint_diag.w_line, m) ]) fmt in
        let open Lint_diag in
        if w.w_rule = "" then bad "waiver names no rule; syntax: lint: allow <rule> -- <reason>"
        else if not (Lint_rules.known_rule w.w_rule) then bad "waiver names unknown rule %S" w.w_rule
        else if w.w_reason = "" then bad "waiver for %s carries no reason; justify it after a dash" w.w_rule
        else if not w.w_used then bad "unused waiver for %s; delete it or move it to the offending line" w.w_rule
        else [])
      waivers
    |> List.map (fun (line, message) ->
           { Lint_diag.file; line; col = 0; rule = "waiver-hygiene"; severity = Lint_diag.Error; message })
  in
  {
    diags = kept @ hygiene;
    used_waivers = List.filter (fun w -> w.Lint_diag.w_used) waivers;
  }

let check_file path =
  let scope = scope_of_path path in
  let has_mli =
    (not (Filename.check_suffix path ".ml"))
    || Sys.file_exists (Filename.remove_extension path ^ ".mli")
  in
  let in_obs = obs_layer_path path in
  check_source ~scope ~has_mli ~domain_exempt:(domain_exempt_path path) ~gc_exempt:in_obs
    ~obs_exempt:in_obs ~file:path (read_file path)

(* [demote] lists rule ids whose diagnostics count as warnings. *)
let run ?(demote = []) roots =
  let files = collect roots in
  let outcomes = List.map check_file files in
  let adjust d =
    if List.mem d.Lint_diag.rule demote then { d with Lint_diag.severity = Lint_diag.Warning }
    else d
  in
  let diags =
    List.concat_map (fun o -> o.diags) outcomes
    |> List.map adjust
    |> List.sort Lint_diag.compare_diag
  in
  let used_waivers = List.concat_map (fun o -> o.used_waivers) outcomes in
  let rule_counts =
    List.map
      (fun (r : Lint_rules.rule) ->
        let sev = if List.mem r.id demote then Lint_diag.Warning else Lint_diag.Error in
        (r.id, sev, List.length (List.filter (fun d -> d.Lint_diag.rule = r.id) diags)))
      Lint_rules.rules
  in
  { Lint_diag.files = List.length files; diags; used_waivers; rule_counts }
