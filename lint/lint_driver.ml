(* Orchestration: walk the requested roots, run the Parsetree rule pass
   over each .ml/.mli, run the cmt (Typedtree) layer over the library's
   build artifacts, merge and dedup the two layers' findings per file,
   apply waivers, and assemble a report.

   The walk skips _build, .git and any directory named lint_fixtures or
   cmt_fixtures (the test corpora contain deliberately bad sources).
   Files are processed in sorted path order and diagnostics are sorted by
   (file, line, col, rule) before emission, so output and report are
   byte-stable across filesystems.

   The cmt layer only scans lib-scoped roots: its artifacts are pinned by
   the @lint rule's dependency on lib's check alias, whereas bench/bin/
   test artifacts may or may not exist when the tool runs — scanning them
   would make the report depend on build history. *)

let skip_dirs = [ "_build"; ".git"; ".hg"; "lint_fixtures"; "cmt_fixtures" ]

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then path :: acc
  else acc

let collect roots = List.fold_left walk [] roots |> List.sort String.compare

(* Path policy lives in Lint_rules, shared with the cmt layer. *)
let scope_of_path = Lint_rules.scope_of_path
let domain_exempt_path = Lint_rules.domain_exempt_path
let obs_layer_path = Lint_rules.obs_layer_path

(* Files whose dominant value type is float: bare polymorphic compare is
   banned outright there (see float-cmp). *)
let float_flagged_files = [ "stats.ml"; "cost.ml" ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

type outcome = {
  diags : Lint_diag.diag list;  (* post-waiver, unsorted *)
  used_waivers : Lint_diag.waiver list;
}

(* Parsetree pass over one compilation unit: raw (pre-waiver) diagnostics.
   [scope] and [has_mli] are injected so the test suite can lint fixture
   files as if they lived under lib/. *)
let check_source_raw ?(scope = Lint_rules.Tool) ?(has_mli = true) ?(domain_exempt = false)
    ?(gc_exempt = false) ?(obs_exempt = false) ~file source =
  let raw = ref [] in
  let emit loc rule message =
    let p = loc.Location.loc_start in
    raw :=
      {
        Lint_diag.file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        layer = Lint_diag.Parsetree;
        severity = Lint_diag.Error;
        message;
      }
      :: !raw
  in
  let ctx =
    {
      Lint_rules.scope;
      float_flagged = List.mem (Filename.basename file) float_flagged_files;
      domain_exempt;
      gc_exempt;
      obs_exempt;
      emit;
    }
  in
  let emit_at ~line ~col rule message =
    raw :=
      { Lint_diag.file; line; col; rule; layer = Lint_diag.Parsetree; severity = Lint_diag.Error; message }
      :: !raw
  in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  (if Filename.check_suffix file ".mli" then
     match Parse.interface lexbuf with
     | sg -> Lint_rules.run_signature ctx sg
     | exception Syntaxerr.Error err ->
         let p = (Syntaxerr.location_of_error err).Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "syntax error"
     | exception Lexer.Error (_, loc) ->
         let p = loc.Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "lexical error"
   else
     match Parse.implementation lexbuf with
     | str ->
         Lint_rules.run_structure ctx str;
         if scope = Lint_rules.Lib && not has_mli then
           emit_at ~line:1 ~col:0 "mli-required"
             "library module has no .mli interface; its whole surface is public API"
     | exception Syntaxerr.Error err ->
         let p = (Syntaxerr.location_of_error err).Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "syntax error"
     | exception Lexer.Error (_, loc) ->
         let p = loc.Location.loc_start in
         emit_at ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) "parse-error"
           "lexical error");
  List.rev !raw

(* Waivers: suppress matching diagnostics (from either layer), then audit
   the waivers themselves.  A malformed or unused waiver is never silently
   ignored. *)
let finalize ~file source raw_diags =
  let waivers = Lint_diag.scan_waivers ~file source in
  let kept = Lint_diag.apply_waivers waivers raw_diags in
  let hygiene =
    List.concat_map
      (fun w ->
        let bad fmt = Printf.ksprintf (fun m -> [ (w.Lint_diag.w_line, m) ]) fmt in
        let open Lint_diag in
        if w.w_rule = "" then bad "waiver names no rule; syntax: lint: allow <rule> -- <reason>"
        else if not (Lint_rules.known_rule w.w_rule) then bad "waiver names unknown rule %S" w.w_rule
        else if w.w_reason = "" then bad "waiver for %s carries no reason; justify it after a dash" w.w_rule
        else if not w.w_used then bad "unused waiver for %s; delete it or move it to the offending line" w.w_rule
        else [])
      waivers
    |> List.map (fun (line, message) ->
           {
             Lint_diag.file;
             line;
             col = 0;
             rule = "waiver-hygiene";
             layer = Lint_diag.Parsetree;
             severity = Lint_diag.Error;
             message;
           })
  in
  {
    diags = kept @ hygiene;
    used_waivers = List.filter (fun w -> w.Lint_diag.w_used) waivers;
  }

(* Parsetree-only check of one source, waivers applied — the entry point
   the unit tests drive. *)
let check_source ?scope ?has_mli ?domain_exempt ?gc_exempt ?obs_exempt ~file source =
  let raw = check_source_raw ?scope ?has_mli ?domain_exempt ?gc_exempt ?obs_exempt ~file source in
  finalize ~file source raw

let file_flags path =
  let in_obs = obs_layer_path path in
  let has_mli =
    (not (Filename.check_suffix path ".ml"))
    || Sys.file_exists (Filename.remove_extension path ^ ".mli")
  in
  (scope_of_path path, has_mli, domain_exempt_path path, in_obs)

let check_file path =
  let scope, has_mli, domain_exempt, in_obs = file_flags path in
  check_source ~scope ~has_mli ~domain_exempt ~gc_exempt:in_obs ~obs_exempt:in_obs ~file:path
    (read_file path)

(* ------------------------------------------------------------------ *)
(* Full two-layer run.                                                 *)

(* [demote] lists rule ids whose diagnostics count as warnings; [cmt]
   turns the Typedtree layer off (fixture-only runs). *)
let run ?(demote = []) ?(cmt = true) roots =
  let files = collect roots in
  (* When the tool runs inside dune's build dir, the tree also holds the
     empty .mli stubs dune materializes for executables — and only for
     executables that happen to have been built.  Drop them, or the file
     count would depend on build history. *)
  let sources =
    List.filter_map
      (fun f ->
        let s = read_file f in
        if String.trim s = "(* Auto-generated by Dune *)" then None else Some (f, s))
      files
  in
  let files = List.map fst sources in
  (* Parsetree layer, raw. *)
  let raw_by_file =
    List.map
      (fun (file, source) ->
        let scope, has_mli, domain_exempt, in_obs = file_flags file in
        ( file,
          check_source_raw ~scope ~has_mli ~domain_exempt ~gc_exempt:in_obs ~obs_exempt:in_obs
            ~file source ))
      sources
  in
  (* Typedtree layer over lib-scoped roots; findings keyed to walked files
     only (a cmt whose source is outside the walk has no waiver source). *)
  let cmt_roots = List.filter (fun r -> scope_of_path r = Lint_rules.Lib) roots in
  let units = if cmt then Lint_cmt.load_units (Lint_cmt.scan_roots cmt_roots) else [] in
  let walked = Hashtbl.create (List.length files) in
  List.iter (fun f -> Hashtbl.replace walked f ()) files;
  let cmt_raw = Hashtbl.create 64 in
  let emit ~file ~line ~col rule message =
    if Hashtbl.mem walked file then
      let d =
        {
          Lint_diag.file;
          line;
          col;
          rule;
          layer = Lint_diag.Cmt;
          severity = Lint_diag.Error;
          message;
        }
      in
      Hashtbl.replace cmt_raw file (d :: (try Hashtbl.find cmt_raw file with Not_found -> []))
  in
  let units = List.filter (fun u -> Hashtbl.mem walked u.Lint_cmt.u_file) units in
  ignore (Lint_cmt.check_units ~emit units);
  (* Merge, dedup, waive per file. *)
  let outcomes =
    List.map
      (fun (file, source) ->
        let pt = List.assoc file raw_by_file in
        let ct = try Hashtbl.find cmt_raw file with Not_found -> [] in
        finalize ~file source (Lint_diag.dedup (pt @ ct)))
      sources
  in
  let adjust d =
    if List.mem d.Lint_diag.rule demote then { d with Lint_diag.severity = Lint_diag.Warning }
    else d
  in
  let diags =
    List.concat_map (fun o -> o.diags) outcomes
    |> List.map adjust
    |> List.sort Lint_diag.compare_diag
  in
  let used_waivers = List.concat_map (fun o -> o.used_waivers) outcomes in
  let rule_counts =
    List.map
      (fun (r : Lint_rules.rule) ->
        let sev = if List.mem r.id demote then Lint_diag.Warning else Lint_diag.Error in
        {
          Lint_diag.rc_id = r.id;
          rc_severity = sev;
          rc_layer = Lint_rules.layer_name r.r_layer;
          rc_count = List.length (List.filter (fun d -> d.Lint_diag.rule = r.id) diags);
          rc_waived =
            List.length (List.filter (fun w -> w.Lint_diag.w_rule = r.id) used_waivers);
        })
      Lint_rules.rules
  in
  {
    Lint_diag.files = List.length files;
    cmt_units = List.length units;
    diags;
    used_waivers;
    rule_counts;
  }
