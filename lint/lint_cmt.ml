(* The Typedtree (.cmt) layer of adhoc_lint.

   Where the Parsetree layer matches what the programmer wrote, this layer
   matches what the compiler resolved: every value reference carries the
   uid of its definition, so [module R = Random], [open Random],
   [include], and functor plumbing cannot hide a banned identity.  Three
   passes share one traversal per unit:

   1. resolved-path rules — the ambient-rng / wall-clock / raw-domain /
      raw-gc / hashtbl-order / obs-purity bans re-checked against resolved
      keys, plus a module-expression check that flags aliasing or functor
      application of the banned modules themselves (the one evasion value
      uids cannot see: code inside a functor body refers to the parameter,
      so the application site [F (Random)] is where the identity appears);

   2. call-graph construction (Lint_callgraph) over all loaded units;

   3. par-safety — for every closure passed to Pool.parallel_for /
      parallel_init / map_reduce / opt_for / opt_init, flag unsanctioned
      writes to captured or global mutable state and calls to functions
      whose transitive effect summary includes shared writes or io.  The
      sanctioned idiom — [arr.(i) <- ...] with the index mentioning a
      binder of the closure — passes, which is exactly the disjoint-cell
      contract of pool.mli.  Named local bodies ([Pool.opt_init pool n
      admit]) are analyzed on demand from their recorded definition;
      cross-module bodies fall back to their call-graph summary. *)

open Typedtree

type unit_info = {
  u_name : string;  (* raw compilation-unit name, e.g. "Adhoc_topo__Yao" *)
  u_file : string;  (* workspace-relative source path from the cmt *)
  u_str : structure;
}

(* ------------------------------------------------------------------ *)
(* Discovery and loading.                                              *)

let default_skip = [ "lint_fixtures"; "cmt_fixtures" ]

let path_has_segment segs path =
  List.exists (fun seg -> List.mem seg segs) (String.split_on_char '/' path)

(* Collect .cmt artifact paths under [root] (dune keeps them in
   .<lib>.objs/byte/).  When the root holds no build artifacts — the tool
   runs from the source tree — fall back to _build/default/<root>. *)
let scan_root ?(skip = default_skip) root =
  let acc = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
        Array.iter
          (fun entry ->
            if not (List.mem entry [ ".git"; ".hg" ]) then walk (Filename.concat path entry))
          (Sys.readdir path)
    | false ->
        if
          Filename.check_suffix path ".cmt"
          && path_has_segment [ "byte" ] path
          && not (path_has_segment skip path)
        then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists root then walk root;
  if !acc = [] then begin
    let alt = Filename.concat (Filename.concat "_build" "default") root in
    if Sys.file_exists alt then walk alt
  end;
  List.sort String.compare !acc

let scan_roots ?skip roots = List.concat_map (scan_root ?skip) roots |> List.sort_uniq String.compare

let norm_slashes p = String.concat "/" (String.split_on_char '\\' p)

let load_unit ?(skip = default_skip) path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when (not (Filename.check_suffix src ".ml-gen")) && not (path_has_segment skip (norm_slashes src)) ->
          Some { u_name = cmt.Cmt_format.cmt_modname; u_file = norm_slashes src; u_str = str }
      | _ -> None)

let load_units ?skip paths =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun p ->
      match load_unit ?skip p with
      | Some u when not (Hashtbl.mem seen u.u_name) ->
          Hashtbl.add seen u.u_name ();
          Some u
      | _ -> None)
    paths

(* ------------------------------------------------------------------ *)
(* Resolved-path rules.                                                *)

let wall_clock_keys =
  [ ("Sys", "time"); ("Unix", "gettimeofday"); ("Unix", "time"); ("Unix", "localtime"); ("Unix", "gmtime") ]

type flags = {
  f_scope : Lint_rules.scope;
  f_domain_exempt : bool;
  f_gc_exempt : bool;
  f_obs_exempt : bool;
}

let check_resolved flags emit loc (k : Lint_effects.key) =
  if k.ku = "Domain" && not flags.f_domain_exempt then
    emit loc "raw-domain"
      (Printf.sprintf "resolves to Domain.%s outside Adhoc_util.Pool; thread a Pool.t through the kernel instead" k.kn);
  if k.ku = "Gc" && not flags.f_gc_exempt then
    emit loc "raw-gc"
      (Printf.sprintf "resolves to Gc.%s outside Adhoc_obs; read GC telemetry through Adhoc_obs.Gcstat" k.kn);
  if flags.f_scope = Lint_rules.Lib then begin
    if k.ku = "Random" then
      emit loc "ambient-rng"
        (Printf.sprintf "resolves to Random.%s: ambient PRNG in library code; thread an explicit Adhoc_util.Prng.t instead" k.kn);
    if List.mem (k.ku, k.kn) wall_clock_keys then
      emit loc "wall-clock"
        (Printf.sprintf "resolves to %s: wall-clock read in library code breaks reproducibility; take time as input or go through Adhoc_obs.Span"
           (Lint_effects.pretty k));
    if k.ku = "Hashtbl" && List.mem k.kn Lint_rules.hashtbl_order_fns then
      emit loc "hashtbl-order"
        (Printf.sprintf "resolves to Hashtbl.%s: unspecified traversal order; iterate sorted keys (Adhoc_util.Det) or justify order-independence in a waiver"
           k.kn);
    if
      (k.ku = "" && List.mem k.kn Lint_rules.print_idents)
      || ((k.ku = "Printf" || k.ku = "Format") && (k.kn = "printf" || k.kn = "eprintf"))
    then
      emit loc "obs-purity"
        (Printf.sprintf "resolves to %s: console output in library code; return data or emit through an Adhoc_obs sink"
           (Lint_effects.pretty k));
    if
      (not flags.f_obs_exempt)
      && ((k.ku = "" && List.mem k.kn Lint_rules.channel_idents) || (k.ku = "Printf" && k.kn = "fprintf"))
    then
      emit loc "obs-purity"
        (Printf.sprintf "resolves to %s: file serialisation in library code; confine it to the obs layer (lib/obs/)"
           (Lint_effects.pretty k))
  end

(* Module expressions naming a banned module: [module R = Random],
   [F (Random)], [open Domain].  Value uids catch the uses; this catches
   the aliasing site itself, which is what a functor body's uses resolve
   to. *)
let banned_module_head flags p =
  let name = Path.name p in
  let head = match String.split_on_char '.' name with "Stdlib" :: m :: _ -> m | m :: _ -> m | [] -> "" in
  match head with
  | "Random" when flags.f_scope = Lint_rules.Lib ->
      Some ("ambient-rng", "module expression names Random: ambient PRNG in library code; thread an explicit Adhoc_util.Prng.t instead")
  | "Domain" when not flags.f_domain_exempt ->
      Some ("raw-domain", "module expression names Domain outside Adhoc_util.Pool; thread a Pool.t through the kernel instead")
  | "Gc" when not flags.f_gc_exempt ->
      Some ("raw-gc", "module expression names Gc outside Adhoc_obs; read GC telemetry through Adhoc_obs.Gcstat")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* par-safety.                                                         *)

let pool_unit = "Adhoc_util__Pool"
let pool_entries = [ "parallel_for"; "parallel_init"; "map_reduce"; "opt_for"; "opt_init" ]

let pool_entry ~unit_name f =
  match f.exp_desc with
  | Texp_ident (p, _, vd) -> (
      match Lint_effects.classify_ident ~unit_name p vd with
      | `Global k when k.Lint_effects.ku = pool_unit && List.mem k.Lint_effects.kn pool_entries ->
          Some k.Lint_effects.kn
      | _ -> None)
  | _ -> None

(* The body argument: the [~map] closure for map_reduce (the fold runs
   sequentially on the calling domain), the last positional argument
   otherwise. *)
let body_arg entry args =
  if entry = "map_reduce" then
    List.find_map
      (function Asttypes.Labelled "map", (Some _ as a) -> a | _ -> None)
      args
  else
    List.fold_left (fun acc -> function Asttypes.Nolabel, (Some _ as a) -> a | _ -> acc) None args

type par_ctx = {
  cg : Lint_callgraph.t;
  memo : (string * string, Lint_effects.effects) Hashtbl.t;  (* (unit, uname) -> summary *)
  in_progress : (string * string, unit) Hashtbl.t;
}

(* Transitive effect summary of a local definition, on demand.  Cycles
   (let rec through locals) resolve to the direct effects accumulated so
   far — the standard least-fixpoint cut. *)
let rec local_summary ctx ~unit ~uname =
  match Hashtbl.find_opt ctx.memo (unit, uname) with
  | Some e -> e
  | None ->
      if Hashtbl.mem ctx.in_progress (unit, uname) then Lint_effects.pure
      else begin
        Hashtbl.replace ctx.in_progress (unit, uname) ();
        let eff =
          match Lint_callgraph.local_def ctx.cg ~unit ~uname with
          | None -> Lint_effects.pure
          | Some def ->
              let acc = ref Lint_effects.pure in
              let on_event _loc = function
                | Lint_effects.Ev_call dep -> acc := Lint_effects.join !acc (dep_summary ctx ~unit dep)
                | _ -> ()
              in
              let direct = Lint_effects.analyze ~unit_name:unit ~on_event def in
              Lint_effects.join direct !acc
        in
        Hashtbl.remove ctx.in_progress (unit, uname);
        Hashtbl.replace ctx.memo (unit, uname) eff;
        eff
      end

and dep_summary ctx ~unit = function
  | Lint_effects.Dep_global k -> (
      match Lint_callgraph.summary ctx.cg k with
      | Some e -> Lint_effects.propagated e
      | None -> Lint_effects.pure)
  | Lint_effects.Dep_local { uname; _ } -> Lint_effects.propagated (local_summary ctx ~unit ~uname)

let dep_name ~unit:_ = function
  | Lint_effects.Dep_global k -> Lint_effects.pretty k
  | Lint_effects.Dep_local { name; _ } -> name

(* Analyze one region body expression, emitting par-safety diagnostics at
   the precise offending locations. *)
let check_par_body ctx ~unit ~entry emit body =
  let on_event loc = function
    | Lint_effects.Ev_shared desc ->
        emit loc "par-safety" (Printf.sprintf "%s inside a Pool.%s body; the Pool contract (pool.mli) demands index-purity" desc entry)
    | Lint_effects.Ev_io what ->
        emit loc "par-safety"
          (Printf.sprintf "io (%s) inside a Pool.%s body; region bodies must be index-pure" what entry)
    | Lint_effects.Ev_call dep ->
        let s = dep_summary ctx ~unit dep in
        if Lint_effects.par_unsafe s then
          emit loc "par-safety"
            (Printf.sprintf "call to %s (effects: %s) inside a Pool.%s body; region bodies must not write shared state or perform io"
               (dep_name ~unit dep) (Lint_effects.to_string s) entry)
    | Lint_effects.Ev_ambient _ -> ()
  in
  ignore (Lint_effects.analyze ~unit_name:unit ~on_event body)

let check_par_site ctx ~unit emit site_loc entry args =
  match body_arg entry args with
  | None -> () (* partial application: the closure is supplied elsewhere *)
  | Some body -> (
      match body.exp_desc with
      | Texp_function _ -> check_par_body ctx ~unit ~entry emit body
      | Texp_ident (p, _, vd) -> (
          match Lint_effects.classify_ident ~unit_name:unit p vd with
          | `Local (uname, name) -> (
              match Lint_callgraph.local_def ctx.cg ~unit ~uname with
              | Some def -> check_par_body ctx ~unit ~entry emit def
              | None ->
                  (* a parameter or an unrecorded binding: summary unknown,
                     assumed pure (documented hole) *)
                  ignore name)
          | `Global k -> (
              match Lint_callgraph.summary ctx.cg k with
              | Some s when Lint_effects.par_unsafe (Lint_effects.propagated s) ->
                  emit site_loc "par-safety"
                    (Printf.sprintf "Pool.%s body %s has effects %s; region bodies must not write shared state or perform io"
                       entry (Lint_effects.pretty k) (Lint_effects.to_string s))
              | _ -> ()))
      | _ ->
          (* a computed body (partial application, composition): analyze the
             expression itself — callee summaries surface through Ev_call *)
          check_par_body ctx ~unit ~entry emit body)

(* ------------------------------------------------------------------ *)
(* Unit traversal.                                                     *)

let check_unit ctx flags ~emit (u : unit_info) =
  let emit_loc loc rule msg =
    if not loc.Location.loc_ghost then begin
      let p = loc.Location.loc_start in
      emit ~file:u.u_file ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) rule msg
    end
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (p, _, vd) -> (
              match Lint_effects.classify_ident ~unit_name:u.u_name p vd with
              | `Global k -> check_resolved flags emit_loc e.exp_loc k
              | `Local _ -> ())
          | Texp_apply (f, args) -> (
              if flags.f_scope = Lint_rules.Lib then
                match pool_entry ~unit_name:u.u_name f with
                | Some entry -> check_par_site ctx ~unit:u.u_name emit_loc e.exp_loc entry args
                | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
      module_expr =
        (fun sub me ->
          (match me.mod_desc with
          | Tmod_ident (p, _) -> (
              match banned_module_head flags p with
              | Some (rule, msg) -> emit_loc me.mod_loc rule msg
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.module_expr sub me);
    }
  in
  it.structure it u.u_str

(* Run the full cmt layer over [units].  [flags_of] derives the per-file
   policy flags (scope, exemptions) from the unit's source path; tests
   override it to lint fixtures as library code.  [emit] receives raw
   (pre-waiver) diagnostics. *)
let check_units ?flags_of ~emit units =
  let flags_of =
    match flags_of with
    | Some f -> f
    | None ->
        fun file ->
          {
            f_scope = Lint_rules.scope_of_path file;
            f_domain_exempt = Lint_rules.domain_exempt_path file;
            f_gc_exempt = Lint_rules.obs_layer_path file;
            f_obs_exempt = Lint_rules.obs_layer_path file;
          }
  in
  let cg = Lint_callgraph.build (List.map (fun u -> (u.u_name, u.u_str)) units) in
  let ctx = { cg; memo = Hashtbl.create 64; in_progress = Hashtbl.create 16 } in
  List.iter (fun u -> check_unit ctx (flags_of u.u_file) ~emit u) units;
  cg
