(* Effect lattice and Typedtree analysis core for the cmt layer.

   Every analyzed expression gets an effect summary over seven flags:

     io           writes a channel / console, spawns domains, touches Unix
     ambient      reads ambient state (Random, wall clock, getenv, Gc)
     raises       calls raise / failwith / invalid_arg
     mut_local    writes mutable state created inside the analyzed frame
     mut_param    writes mutable state received as a parameter
     mut_indexed  writes a captured/global array cell whose index mentions a
                  frame-local binder — the sanctioned disjoint-cell idiom of
                  the Pool contract (pool.mli)
     mut_shared   writes captured or global mutable state any other way

   Across a call edge only [io], [ambient], [raises] and [mut_shared]
   propagate to the caller: a callee mutating its own locals is pure from
   the outside, a callee mutating its parameter may have been handed
   caller-local state (documented hole: we do not track which), and the
   indexed idiom is by construction disjoint per index.

   The analysis resolves identifiers through their typedtree [val_uid], so
   module aliases, [open] and [include] cannot hide an identity: the key of
   a value is (defining compilation unit, name).  Known stdlib values carry
   axioms (the table below); unknown externals are assumed pure.  Effects
   of nested lambdas count toward the enclosing binding (defining an
   io-performing closure marks the definer — a deliberate
   over-approximation).  Calls through function-typed parameters are
   assumed pure (the [?pool] kernels all take iterator callbacks; flagging
   those would drown the signal).  [assert] is treated as contract, not as
   a raise effect, and [try] does not mask [raises]. *)

type effects = {
  io : bool;
  ambient : bool;
  raises : bool;
  mut_local : bool;
  mut_param : bool;
  mut_indexed : bool;
  mut_shared : bool;
}

let pure =
  {
    io = false;
    ambient = false;
    raises = false;
    mut_local = false;
    mut_param = false;
    mut_indexed = false;
    mut_shared = false;
  }

let join a b =
  {
    io = a.io || b.io;
    ambient = a.ambient || b.ambient;
    raises = a.raises || b.raises;
    mut_local = a.mut_local || b.mut_local;
    mut_param = a.mut_param || b.mut_param;
    mut_indexed = a.mut_indexed || b.mut_indexed;
    mut_shared = a.mut_shared || b.mut_shared;
  }

(* What a call site inherits from the callee's summary. *)
let propagated e = { pure with io = e.io; ambient = e.ambient; raises = e.raises; mut_shared = e.mut_shared }

(* The two effects that break the Pool contract outright. *)
let par_unsafe e = e.io || e.mut_shared

let equal (a : effects) b = a = b

(* Deterministic rendering for goldens and messages. *)
let names e =
  let tags =
    [
      ("io", e.io);
      ("ambient", e.ambient);
      ("raises", e.raises);
      ("mut-shared", e.mut_shared);
      ("mut-indexed", e.mut_indexed);
      ("mut-param", e.mut_param);
      ("mut-local", e.mut_local);
    ]
  in
  match List.filter_map (fun (n, on) -> if on then Some n else None) tags with
  | [] -> [ "pure" ]
  | ns -> ns

let to_string e = String.concat "+" (names e)

(* ------------------------------------------------------------------ *)
(* Resolved identity: (normalized defining unit, value name).          *)

type key = { ku : string; kn : string }

let normalize_unit u =
  if u = "Stdlib" then ""
  else
    let p = "Stdlib__" in
    let k = String.length p in
    if String.length u > k && String.sub u 0 k = p then String.sub u k (String.length u - k) else u

let pretty k = if k.ku = "" then k.kn else k.ku ^ "." ^ k.kn

let rec path_last = function
  | Path.Pident id -> Ident.name id
  | Path.Pdot (_, s) -> s
  | Path.Papply (_, p) -> path_last p
  | Path.Pextra_ty (p, _) -> path_last p

let uid_unit ~unit_name (vd : Types.value_description) =
  match vd.val_uid with
  | Shape.Uid.Item { comp_unit; _ } -> Some comp_unit
  | Shape.Uid.Compilation_unit cu -> Some cu
  | Shape.Uid.Predef _ -> Some "Stdlib"
  | Shape.Uid.Internal -> Some unit_name

(* [`Local (unique_name, name)] for idents bound in the current unit
   (frame-locals, parameters and module-level values alike — the caller
   tells them apart); [`Global key] for everything resolved elsewhere. *)
let classify_ident ~unit_name path vd =
  match path with
  | Path.Pident id -> (
      match uid_unit ~unit_name vd with
      | Some cu when cu <> unit_name && cu <> "" ->
          (* [include] of another unit rebinds foreign values under a bare
             ident; the uid still names the real owner. *)
          `Global { ku = normalize_unit cu; kn = Ident.name id }
      | _ -> `Local (Ident.unique_name id, Ident.name id))
  | _ ->
      let cu = match uid_unit ~unit_name vd with Some cu -> cu | None -> unit_name in
      `Global { ku = normalize_unit cu; kn = path_last path }

(* ------------------------------------------------------------------ *)
(* Axioms for stdlib values the analysis must understand natively.     *)

(* [dst] lists the 0-based positions (among positional arguments) of the
   structures a mutator writes; [indexed] marks array-like cell writes
   eligible for the sanctioned disjoint-cell downgrade. *)
type axiom = Mutator of { dst : int list; indexed : bool } | Io | Ambient | Raise

let cell = Mutator { dst = [ 0 ]; indexed = true }
let m0 = Mutator { dst = [ 0 ]; indexed = false }
let m1 = Mutator { dst = [ 1 ]; indexed = false }
let m2 = Mutator { dst = [ 2 ]; indexed = false }

let value_axioms =
  [
    (("", ":="), m0);
    (("", "incr"), m0);
    (("", "decr"), m0);
    (("Array", "set"), cell);
    (("Array", "unsafe_set"), cell);
    (("Array", "fill"), m0);
    (("Array", "blit"), m2);
    (("Array", "sort"), m1);
    (("Array", "stable_sort"), m1);
    (("Array", "fast_sort"), m1);
    (("Float", "set"), cell);
    (("Float", "unsafe_set"), cell);
    (("Bytes", "set"), cell);
    (("Bytes", "unsafe_set"), cell);
    (("Bytes", "fill"), m0);
    (("Bytes", "unsafe_fill"), m0);
    (("Bytes", "blit"), m2);
    (("Bytes", "blit_string"), m2);
    (("Bigarray", "set"), cell);
    (("Bigarray", "unsafe_set"), cell);
    (("Bigarray", "fill"), m0);
    (("Bigarray", "blit"), m1);
    (("Hashtbl", "add"), m0);
    (("Hashtbl", "replace"), m0);
    (("Hashtbl", "remove"), m0);
    (("Hashtbl", "reset"), m0);
    (("Hashtbl", "clear"), m0);
    (("Hashtbl", "filter_map_inplace"), m1);
    (("Buffer", "add_string"), m0);
    (("Buffer", "add_char"), m0);
    (("Buffer", "add_bytes"), m0);
    (("Buffer", "add_substring"), m0);
    (("Buffer", "add_subbytes"), m0);
    (("Buffer", "add_buffer"), m0);
    (("Buffer", "clear"), m0);
    (("Buffer", "reset"), m0);
    (("Buffer", "truncate"), m0);
    (("Queue", "add"), m1);
    (("Queue", "push"), m1);
    (("Queue", "pop"), m0);
    (("Queue", "take"), m0);
    (("Queue", "clear"), m0);
    (("Queue", "transfer"), Mutator { dst = [ 0; 1 ]; indexed = false });
    (("Stack", "push"), m1);
    (("Stack", "pop"), m0);
    (("Stack", "clear"), m0);
    (("Atomic", "set"), m0);
    (("Atomic", "exchange"), m0);
    (("Atomic", "compare_and_set"), m0);
    (("Atomic", "fetch_and_add"), m0);
    (("Atomic", "incr"), m0);
    (("Atomic", "decr"), m0);
    (* io *)
    (("Printf", "printf"), Io);
    (("Printf", "eprintf"), Io);
    (("Printf", "fprintf"), Io);
    (("Format", "printf"), Io);
    (("Format", "eprintf"), Io);
    (("Format", "fprintf"), Io);
    (("Sys", "command"), Io);
    (("Sys", "remove"), Io);
    (("Sys", "rename"), Io);
    (("Sys", "readdir"), Io);
    (("Sys", "getcwd"), Io);
    (("Sys", "chdir"), Io);
    (("Filename", "temp_file"), Io);
    (("", "exit"), Io);
    (("", "open_in"), Io);
    (("", "open_in_bin"), Io);
    (("", "open_in_gen"), Io);
    (("", "input_line"), Io);
    (("", "input_char"), Io);
    (("", "really_input_string"), Io);
    (("", "read_line"), Io);
    (("", "read_int"), Io);
    (("", "flush"), Io);
    (("", "flush_all"), Io);
    (* ambient *)
    (("Sys", "time"), Ambient);
    (("Sys", "getenv"), Ambient);
    (("Sys", "getenv_opt"), Ambient);
    (("Unix", "gettimeofday"), Ambient);
    (("Unix", "time"), Ambient);
    (("Unix", "localtime"), Ambient);
    (("Unix", "gmtime"), Ambient);
    (* raises *)
    (("", "raise"), Raise);
    (("", "raise_notrace"), Raise);
    (("", "failwith"), Raise);
    (("", "invalid_arg"), Raise);
  ]

(* Whole units with a uniform effect (checked after the value table). *)
let unit_axioms =
  [ ("Random", Ambient); ("Domain", Io); ("Out_channel", Io); ("In_channel", Io); ("Unix", Io); ("Gc", Ambient) ]

let axiom_of k =
  match List.assoc_opt (k.ku, k.kn) value_axioms with
  | Some a -> Some a
  | None -> (
      match List.assoc_opt k.ku unit_axioms with
      | Some a -> Some a
      | None ->
          (* console / channel primitives share Lint_rules' ban tables *)
          if k.ku = "" && (List.mem k.kn Lint_rules.print_idents || List.mem k.kn Lint_rules.channel_idents)
          then Some Io
          else None)

(* Peeling a mutation target to its root ident steps through field
   projections and through these pure accessors ([!r := ...] chains,
   [a.(i).(j) <- ...]). *)
let projections = [ ("", "!"); ("", "fst"); ("", "snd"); ("Array", "get"); ("Array", "unsafe_get"); ("Bytes", "get"); ("Bigarray", "get") ]

(* ------------------------------------------------------------------ *)
(* The traversal.                                                      *)

type dep = Dep_global of key | Dep_local of { uname : string; name : string }

type ev =
  | Ev_io of string  (* direct io primitive, pretty-printed *)
  | Ev_ambient of string
  | Ev_shared of string  (* description of an unsanctioned shared write *)
  | Ev_call of dep  (* reference to a non-axiom value *)

type st = {
  u : string;  (* raw compilation-unit name, e.g. "Adhoc_topo__Yao" *)
  frame : (string, unit) Hashtbl.t;  (* let/match/for binders (unique names) *)
  params : (string, unit) Hashtbl.t;  (* lambda binders at any depth *)
  mutable sink_params : bool;  (* route pattern vars to [params] *)
  mutable eff : effects;
  ev : Location.t -> ev -> unit;
}

let bound st uname = Hashtbl.mem st.frame uname || Hashtbl.mem st.params uname

open Typedtree

let positional args = List.filter_map (function Asttypes.Nolabel, Some a -> Some a | _ -> None) args

let ident_key ~unit_name p vd =
  match classify_ident ~unit_name p vd with `Global k -> Some k | `Local _ -> None

let rec root_expr st e =
  match e.exp_desc with
  | Texp_ident (p, _, vd) -> Some (p, vd)
  | Texp_field (e', _, _) -> root_expr st e'
  | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (p, _, vd) when
          (match ident_key ~unit_name:st.u p vd with
          | Some k -> List.mem (k.ku, k.kn) projections
          | None -> false) -> (
          match positional args with a :: _ -> root_expr st a | [] -> None)
      | _ -> None)
  | _ -> None

(* Does [e] mention any frame-bound ident?  Used to recognise the
   sanctioned index of a disjoint-cell write. *)
let mentions_frame st e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when bound st (Ident.unique_name id) -> found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  !found

let add_binder tbl id = Hashtbl.replace tbl (Ident.unique_name id) ()

let record_write st loc desc cls =
  match cls with
  | `Local -> st.eff <- { st.eff with mut_local = true }
  | `Param -> st.eff <- { st.eff with mut_param = true }
  | `Indexed -> st.eff <- { st.eff with mut_indexed = true }
  | `Shared ->
      st.eff <- { st.eff with mut_shared = true };
      st.ev loc (Ev_shared desc)

(* Classify one write whose destination expression is [dst]. *)
let classify_write st loc ~via ~indexed ~index_ok dst =
  let shared_desc name =
    Printf.sprintf "write to captured or global mutable state (%s via %s)" name via
  in
  let captured () = if indexed && index_ok then `Indexed else `Shared in
  let cls, desc =
    match root_expr st dst with
    | None -> ((if indexed && index_ok then `Indexed else `Shared), shared_desc "an unresolved target")
    | Some (p, vd) -> (
        match classify_ident ~unit_name:st.u p vd with
        | `Local (uname, name) ->
            if Hashtbl.mem st.params uname then (`Param, "")
            else if Hashtbl.mem st.frame uname then (`Local, "")
            else (captured (), shared_desc name)
        | `Global k -> (captured (), shared_desc (pretty k)))
  in
  record_write st loc desc cls

let handle_mutation st loc key ~dst ~indexed args =
  let pos = positional args in
  let npos = List.length pos in
  (* Index arguments of a cell write: everything between the destination
     and the stored value (Array.set a i v, Bigarray set a i j v). *)
  let index_ok =
    indexed
    && List.exists
         (fun i -> match List.nth_opt pos i with Some ix -> mentions_frame st ix | None -> false)
         (if npos >= 3 then List.init (npos - 2) (fun i -> i + 1) else List.init (max 0 (npos - 1)) (fun i -> i + 1))
  in
  List.iter
    (fun di ->
      match List.nth_opt pos di with
      | Some d -> classify_write st loc ~via:(pretty key) ~indexed ~index_ok d
      | None ->
          (* partial application with the destination not yet supplied *)
          record_write st loc
            (Printf.sprintf "partial application of mutator %s with unknown destination" (pretty key))
            `Shared)
    dst

(* A bare (unapplied) reference only becomes a call edge when the value
   could be a function the receiver later invokes ([List.iter helper xs]).
   References to computed data — an array built by an earlier region, a
   record of results — are reads: their definition-time effects already
   happened and must not propagate to the use site.  Type variables count
   as possibly-function (conservative); arrows hidden behind a type
   abbreviation are missed (documented hole). *)
let rec maybe_fun ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tvar _ | Types.Tunivar _ -> true
  | Types.Tpoly (t, _) -> maybe_fun t
  | _ -> false

let handle_ident st loc p vd args =
  let callable = args <> None || maybe_fun vd.Types.val_type in
  match classify_ident ~unit_name:st.u p vd with
  | `Local (uname, name) ->
      if (not (bound st uname)) && callable then st.ev loc (Ev_call (Dep_local { uname; name }))
  | `Global key -> (
      match axiom_of key with
      | Some Io ->
          st.eff <- { st.eff with io = true };
          st.ev loc (Ev_io (pretty key))
      | Some Ambient ->
          st.eff <- { st.eff with ambient = true };
          st.ev loc (Ev_ambient (pretty key))
      | Some Raise -> st.eff <- { st.eff with raises = true }
      | Some (Mutator { dst; indexed }) -> (
          match args with
          | Some args -> handle_mutation st loc key ~dst ~indexed args
          | None -> () (* bare reference to a mutator passed as a value: out of model *))
      | None -> if not (List.mem (key.ku, key.kn) projections) then st.ev loc (Ev_call (Dep_global key)))

let iterator st =
  let open Tast_iterator in
  let expr sub e =
    match e.exp_desc with
    | Texp_ident (p, _, vd) -> handle_ident st e.exp_loc p vd None
    | Texp_apply (f, args) ->
        (match f.exp_desc with
        | Texp_ident (p, _, vd) -> handle_ident st f.exp_loc p vd (Some args)
        | _ -> sub.expr sub f);
        List.iter (fun (_, a) -> Option.iter (sub.expr sub) a) args
    | Texp_function { param; cases; _ } ->
        add_binder st.params param;
        let saved = st.sink_params in
        st.sink_params <- true;
        List.iter (fun c -> sub.pat sub c.c_lhs) cases;
        st.sink_params <- saved;
        List.iter
          (fun c ->
            Option.iter (sub.expr sub) c.c_guard;
            sub.expr sub c.c_rhs)
          cases
    | Texp_for (id, _, lo, hi, _, body) ->
        add_binder st.frame id;
        sub.expr sub lo;
        sub.expr sub hi;
        sub.expr sub body
    | Texp_setfield (obj, lid, ld, v) ->
        ignore lid;
        classify_write st e.exp_loc
          ~via:(Printf.sprintf "mutable field %s" ld.Types.lbl_name)
          ~indexed:false ~index_ok:false obj;
        sub.expr sub obj;
        sub.expr sub v
    | _ -> default_iterator.expr sub e
  in
  let pat : type k. iterator -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> add_binder (if st.sink_params then st.params else st.frame) id
    | Tpat_alias (_, id, _) -> add_binder (if st.sink_params then st.params else st.frame) id
    | _ -> ());
    default_iterator.pat sub p
  in
  { default_iterator with expr; pat }

(* Analyze one expression in a fresh frame.  Binders introduced anywhere
   inside count as frame-local; free idents are captured or global. *)
let analyze ~unit_name ?(on_event = fun _ _ -> ()) e =
  let st =
    {
      u = unit_name;
      frame = Hashtbl.create 64;
      params = Hashtbl.create 16;
      sink_params = false;
      eff = pure;
      ev = on_event;
    }
  in
  let it = iterator st in
  it.Tast_iterator.expr it e;
  st.eff
